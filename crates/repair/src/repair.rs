//! Repair engine selection, shared result types, and the pass-loop
//! heuristic (the reference engine).

use crate::class_engine;
use crate::cost::CostModel;
use cfd_core::{Cfd, ViolationKind, ViolationWitness};
use cfd_relation::{placeholder, AttrId, AttrType, Relation, Value, ValueId};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// One cell modification performed by the repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Modification {
    /// Index of the modified row.
    pub row: usize,
    /// Modified attribute.
    pub attr: AttrId,
    /// Value before the modification.
    pub old: Value,
    /// Value after the modification.
    pub new: Value,
}

impl fmt::Display for Modification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row {} attr {}: {} -> {}",
            self.row, self.attr, self.old, self.new
        )
    }
}

/// Which repair engine to run. Both engines terminate with instances the
/// detection layer verifies identically (the differential harness pins
/// this), but they differ in strategy and asymptotics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RepairKind {
    /// The per-witness pass loop: every pass re-detects all violations of
    /// every CFD from scratch and resolves them witness by witness
    /// (`O(passes × |Σ| × |I|)`). Kept as the reference path for
    /// differential testing.
    Heuristic,
    /// The equivalence-class engine: one seeding detection pass, cell
    /// classes with weighted cost-minimal target selection, and incremental
    /// per-group re-checking after each edit (see
    /// [`crate::class_engine`]). The default.
    #[default]
    EquivClass,
}

impl RepairKind {
    /// Repairs `rel` with the selected engine under the default
    /// configuration.
    pub fn repair(&self, cfds: &[Cfd], rel: &Relation) -> RepairResult {
        Repairer::with_config(RepairConfig {
            kind: *self,
            ..RepairConfig::default()
        })
        .repair(cfds, rel)
    }
}

/// Configuration shared by both repair engines.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// The engine to run.
    pub kind: RepairKind,
    /// Maximum number of passes (heuristic) / rounds (class engine) before
    /// giving up.
    pub max_passes: usize,
    /// Cost model used to price modifications and select class targets.
    pub cost_model: CostModel,
    /// Whether LHS placeholder edits are allowed as a last resort.
    pub allow_lhs_edits: bool,
    /// Whether LHS placeholders respect the column's declared type
    /// (`INTEGER` columns receive integer sentinels). When `false`, every
    /// placeholder is a fresh string — the explicit bypass.
    pub typed_placeholders: bool,
    /// Worker-thread budget of the equivalence-class engine (the pass-loop
    /// heuristic is unaffected; clamped to ≥ 1 when used). The engine
    /// additionally clamps the budget by the spawn-amortization rule shared
    /// with the detection planner ([`cfd_detect::MIN_ROWS_PER_WORKER`]), so
    /// 1-core hosts and instances too small to amortize thread setup run
    /// the sequential path regardless of this setting. Repairs are
    /// **byte-identical at any budget** (see [`crate::parallel`]). Defaults
    /// to the machine's available cores.
    pub threads: usize,
    /// Differential-testing override: honor `threads` even on instances too
    /// small to amortize thread spawn. Production paths leave this `false`;
    /// the differential harness sets it to force the component-parallel
    /// planning and batched-recheck code paths on small workloads, where
    /// the amortization clamp would otherwise silently fall back to the
    /// sequential path and make byte-identity assertions vacuous.
    pub force_parallel: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            kind: RepairKind::default(),
            max_passes: 16,
            cost_model: CostModel::default(),
            allow_lhs_edits: true,
            typed_placeholders: true,
            threads: cfd_detect::available_cores(),
            force_parallel: false,
        }
    }
}

/// The outcome of a repair run.
#[derive(Debug, Clone)]
pub struct RepairResult {
    /// The repaired instance.
    pub repaired: Relation,
    /// Every modification applied, in application order (the raw log —
    /// a cell edited in several passes appears once per touch).
    pub modifications: Vec<Modification>,
    /// Total cost of the **net** per-cell changes under the configured cost
    /// model: each modified cell is priced once, from its original value to
    /// its final value; cells that returned to their original value cost
    /// nothing.
    pub cost: f64,
    /// Whether the repaired instance satisfies every input CFD.
    pub satisfied: bool,
    /// Number of passes/rounds the engine used.
    pub passes: usize,
}

impl RepairResult {
    pub(crate) fn finish(
        repaired: Relation,
        modifications: Vec<Modification>,
        passes: usize,
        satisfied: bool,
        model: &CostModel,
    ) -> Self {
        let cost = net_fold(&modifications)
            .into_iter()
            .map(|((row, _), (old, new))| model.change_cost(row, &old, &new))
            .sum();
        RepairResult {
            repaired,
            modifications,
            cost,
            satisfied,
            passes,
        }
    }

    /// Number of modification-log entries (cells touched, counting repeats).
    pub fn changes(&self) -> usize {
        self.modifications.len()
    }

    /// The net per-cell changes, ordered by `(row, attr)`: one entry per
    /// cell whose final value differs from its original value, pricing-wise
    /// the only changes that matter (see [`RepairResult::cost`]).
    pub fn net_modifications(&self) -> Vec<Modification> {
        net_fold(&self.modifications)
            .into_iter()
            .map(|((row, attr), (old, new))| Modification {
                row,
                attr,
                old,
                new,
            })
            .collect()
    }
}

/// Folds a modification log into `(row, attr) → (first old, final new)`,
/// dropping cells that ended where they started. `BTreeMap` so both the cost
/// summation order and [`RepairResult::net_modifications`] are
/// deterministic.
fn net_fold(modifications: &[Modification]) -> BTreeMap<(usize, AttrId), (Value, Value)> {
    let mut net: BTreeMap<(usize, AttrId), (Value, Value)> = BTreeMap::new();
    for m in modifications {
        net.entry((m.row, m.attr))
            .and_modify(|e| e.1 = m.new.clone())
            .or_insert_with(|| (m.old.clone(), m.new.clone()));
    }
    net.retain(|_, (old, new)| old != new);
    net
}

/// Number of distinct violating `(cfd, pattern, row)` pairs — the progress
/// measure of both engines' stall checks. Counting *witnesses* instead is
/// wrong: merging two multi-tuple witnesses into one (while fixing nothing)
/// shrinks the witness count and reads as progress.
pub(crate) fn count_violating_pairs<'a, I>(witnesses: I) -> usize
where
    I: IntoIterator<Item = (usize, &'a ViolationWitness)>,
{
    let mut pairs: HashSet<(usize, usize, usize)> = HashSet::new();
    for (cfd_idx, w) in witnesses {
        for &row in &w.rows {
            pairs.insert((cfd_idx, w.pattern_index, row));
        }
    }
    pairs.len()
}

/// The LHS attribute an LHS edit should overwrite for `cfd`'s pattern row
/// `pattern_idx`: prefer an attribute whose pattern cell is a constant (so
/// the placeholder breaks the match), else the first LHS attribute.
pub(crate) fn lhs_edit_attr(cfd: &Cfd, pattern_idx: usize) -> Option<AttrId> {
    let pattern = &cfd.tableau().rows()[pattern_idx];
    cfd.lhs()
        .iter()
        .zip(pattern.lhs())
        .find(|(_, cell)| cell.is_const())
        .map(|(a, _)| *a)
        .or_else(|| cfd.lhs().first().copied())
}

/// Mints the placeholder an LHS edit writes into `attr` of `rel`, honouring
/// the typed-placeholder flag. `counter` is the *run-scoped* candidate
/// number (both engines start every run at 0), which makes placeholder
/// spellings — and therefore whole repairs — reproducible across repeated
/// runs: a candidate spelling already interned by an earlier run is
/// **reused** when it provably is a placeholder and does not occur in `rel`;
/// a spelling that exists as real data (or as any non-placeholder value) is
/// skipped, exactly like the global mint does.
pub(crate) fn mint_placeholder_for(
    rel: &Relation,
    attr: AttrId,
    typed_placeholders: bool,
    counter: &mut u64,
) -> ValueId {
    let ty = if typed_placeholders {
        rel.schema()
            .domain(attr)
            .map(|d| d.attr_type())
            .unwrap_or(AttrType::Text)
    } else {
        AttrType::Text
    };
    loop {
        let n = *counter;
        *counter += 1;
        let cand = placeholder::candidate(ty, n);
        match ValueId::get(&cand) {
            None => return placeholder::register(cand),
            Some(id) if placeholder::is_placeholder(id) && !relation_contains(rel, id) => {
                return id;
            }
            Some(_) => continue,
        }
    }
}

/// Whether any cell of `rel` holds `id` (column scan; only runs on the rare
/// placeholder-reuse path).
fn relation_contains(rel: &Relation, id: ValueId) -> bool {
    rel.schema().attr_ids().any(|a| rel.column(a).contains(&id))
}

/// The repair front-end: dispatches to the configured engine.
#[derive(Debug, Clone, Default)]
pub struct Repairer {
    config: RepairConfig,
}

impl Repairer {
    /// A repairer with the default configuration (the equivalence-class
    /// engine).
    pub fn new() -> Self {
        Repairer::default()
    }

    /// A repairer running the pass-loop heuristic (the reference engine).
    pub fn heuristic() -> Self {
        Repairer::with_config(RepairConfig {
            kind: RepairKind::Heuristic,
            ..RepairConfig::default()
        })
    }

    /// A repairer with an explicit configuration.
    pub fn with_config(config: RepairConfig) -> Self {
        Repairer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }

    /// Repairs `rel` with respect to `cfds` by attribute-value modification.
    ///
    /// The input CFD set should be consistent (an inconsistent set admits no
    /// repair; the result will report `satisfied == false`).
    pub fn repair(&self, cfds: &[Cfd], rel: &Relation) -> RepairResult {
        match self.config.kind {
            RepairKind::Heuristic => self.repair_heuristic(cfds, rel),
            RepairKind::EquivClass => class_engine::repair(cfds, rel, &self.config),
        }
    }

    /// Like [`Repairer::repair`], but handing the equivalence-class engine
    /// **prebuilt** per-CFD LHS indexes (one slot per CFD in CFD order) so a
    /// prepared session can share the indexes it already maintains for
    /// detection instead of letting the engine rebuild them from scratch.
    ///
    /// Every supplied index must cover its CFD's LHS attributes in order and
    /// be in sync with `rel`; `None` slots (and slots of don't-care CFDs)
    /// are built or handled internally as usual. The pass-loop heuristic
    /// does not use LHS indexes, so it ignores them. Results are
    /// **byte-identical** to [`Repairer::repair`] on the same inputs.
    pub fn repair_with_indexes(
        &self,
        cfds: &[Cfd],
        rel: &Relation,
        indexes: Vec<Option<cfd_relation::Index>>,
    ) -> RepairResult {
        match self.config.kind {
            RepairKind::Heuristic => self.repair_heuristic(cfds, rel),
            RepairKind::EquivClass => {
                class_engine::repair_with_indexes(cfds, rel, &self.config, indexes)
            }
        }
    }

    /// The pass-loop heuristic: re-detect everything each pass, resolve
    /// witness by witness, fall back to an LHS edit on stall.
    fn repair_heuristic(&self, cfds: &[Cfd], rel: &Relation) -> RepairResult {
        let mut repaired = rel.clone();
        let mut modifications: Vec<Modification> = Vec::new();
        let mut passes = 0usize;
        let mut placeholder_counter = 0u64;

        // The stall measure: distinct violating (cfd, pattern, row) pairs.
        let pair_count = |rel: &Relation| {
            let all: Vec<(usize, ViolationWitness)> = cfds
                .iter()
                .enumerate()
                .flat_map(|(i, c)| c.violations(rel).into_iter().map(move |w| (i, w)))
                .collect();
            count_violating_pairs(all.iter().map(|(i, w)| (*i, w)))
        };

        // One sweep up front; afterwards each pass's `after` count carries
        // over as the next pass's `before` (recomputed only when an LHS edit
        // mutates the relation between the two), so the dominant detection
        // sweep runs once per pass, not twice.
        let mut before = pair_count(&repaired);
        for _ in 0..self.config.max_passes {
            if before == 0 {
                break;
            }
            passes += 1;

            for cfd in cfds {
                self.resolve_constant_violations(cfd, &mut repaired, &mut modifications);
                self.resolve_group_violations(cfd, &mut repaired, &mut modifications);
            }

            let after = pair_count(&repaired);
            if after == 0 {
                break;
            }
            if after >= before {
                // RHS edits are oscillating or stuck (the cross-CFD
                // interaction of Section 6): fall back to an LHS edit, which
                // removes one violating tuple from the pattern's scope.
                if !self.config.allow_lhs_edits
                    || !self.apply_lhs_edit(
                        cfds,
                        &mut repaired,
                        &mut modifications,
                        &mut placeholder_counter,
                    )
                {
                    break;
                }
                before = pair_count(&repaired);
            } else {
                before = after;
            }
        }

        let satisfied = cfds.iter().all(|c| c.satisfied_by(&repaired));
        RepairResult::finish(
            repaired,
            modifications,
            passes,
            satisfied,
            &self.config.cost_model,
        )
    }

    /// Overwrites RHS attributes that contradict a pattern constant.
    /// Current cells are compared as interned ids straight off the columns;
    /// values are resolved only when a modification is recorded.
    fn resolve_constant_violations(
        &self,
        cfd: &Cfd,
        rel: &mut Relation,
        modifications: &mut Vec<Modification>,
    ) {
        let witnesses: Vec<_> = cfd
            .violations(rel)
            .into_iter()
            .filter(|w| w.kind == ViolationKind::SingleTuple)
            .collect();
        for w in witnesses {
            let pattern = &cfd.tableau().rows()[w.pattern_index];
            for &row_idx in &w.rows {
                for (attr, cell) in cfd.rhs().iter().zip(pattern.rhs()) {
                    if let Some(target) = cell.const_id() {
                        let current = rel.column(*attr)[row_idx];
                        if current != target {
                            rel.set_id(row_idx, *attr, target);
                            modifications.push(Modification {
                                row: row_idx,
                                attr: *attr,
                                old: current.resolve().clone(),
                                new: target.resolve().clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Resolves multi-tuple violations per equivalence class by moving the
    /// minority to the plurality `Y` projection. Counting runs on interned
    /// id keys; count ties break deterministically on the resolved values
    /// (never on hash-map iteration order).
    fn resolve_group_violations(
        &self,
        cfd: &Cfd,
        rel: &mut Relation,
        modifications: &mut Vec<Modification>,
    ) {
        let witnesses: Vec<_> = cfd
            .violations(rel)
            .into_iter()
            .filter(|w| w.kind == ViolationKind::MultiTuple)
            .collect();
        for w in witnesses {
            // Count the Y projections in this class and pick the plurality.
            let mut counts: HashMap<Vec<ValueId>, usize> = HashMap::new();
            for &row_idx in &w.rows {
                // wslint: allow(panic_path, "witness rows were produced by detection over this same relation")
                let key = rel.row(row_idx).expect("witness row in range");
                *counts.entry(key.project_ids(cfd.rhs())).or_insert(0) += 1;
            }
            // Resolve each distinct key once, then pick the highest count,
            // breaking ties on the smallest resolved key (deterministic and
            // allocation-free inside the comparison loop).
            // wslint: allow(hash_iteration, "order-independent: the plurality pick below is max_by with a total-order tie-break")
            let resolved: Vec<(Vec<ValueId>, usize, Vec<&Value>)> = counts
                .into_iter()
                .map(|(k, c)| {
                    let vals: Vec<&Value> = k.iter().map(|id| id.resolve()).collect();
                    (k, c, vals)
                })
                .collect();
            let Some((target, _, _)) = resolved
                .into_iter()
                .max_by(|(_, ca, va), (_, cb, vb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            else {
                continue;
            };
            for &row_idx in &w.rows {
                for (pos, attr) in cfd.rhs().iter().enumerate() {
                    let current = rel.column(*attr)[row_idx];
                    if current != target[pos] {
                        rel.set_id(row_idx, *attr, target[pos]);
                        modifications.push(Modification {
                            row: row_idx,
                            attr: *attr,
                            old: current.resolve().clone(),
                            new: target[pos].resolve().clone(),
                        });
                    }
                }
            }
        }
    }

    /// Breaks one remaining violation by overwriting an LHS attribute of one
    /// violating tuple with a fresh (typed) placeholder, taking it out of
    /// the pattern's scope. Returns whether an edit was applied.
    fn apply_lhs_edit(
        &self,
        cfds: &[Cfd],
        rel: &mut Relation,
        modifications: &mut Vec<Modification>,
        placeholder_counter: &mut u64,
    ) -> bool {
        for cfd in cfds {
            // `violations` is deterministically sorted, so the first witness
            // (and therefore the whole repair) is reproducible run to run.
            let Some(witness) = cfd.violations(rel).into_iter().next() else {
                continue;
            };
            let Some(&row_idx) = witness.rows.first() else {
                continue;
            };
            let Some(attr) = lhs_edit_attr(cfd, witness.pattern_index) else {
                continue;
            };
            let old = rel.column(attr)[row_idx].resolve().clone();
            let new_id = mint_placeholder_for(
                rel,
                attr,
                self.config.typed_placeholders,
                placeholder_counter,
            );
            rel.set_id(row_idx, attr, new_id);
            modifications.push(Modification {
                row: row_idx,
                attr,
                old,
                new: new_id.resolve().clone(),
            });
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{UnitDistance, ValueDistance};
    use cfd_core::CfdSet;
    use cfd_datagen::cust::{cust_instance, cust_schema, fig2_cfd_set, phi2};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::{Schema, TupleWeights};
    use std::sync::Arc;

    const BOTH: [RepairKind; 2] = [RepairKind::Heuristic, RepairKind::EquivClass];

    #[test]
    fn repairs_the_running_example() {
        // Fig. 1 violates ϕ2 (area code 908 should imply city MH).
        let rel = cust_instance();
        let cfds: Vec<Cfd> = fig2_cfd_set().into_iter().collect();
        for kind in BOTH {
            let result = kind.repair(&cfds, &rel);
            assert!(result.satisfied, "{kind:?} must satisfy the CFDs");
            assert!(
                result.changes() >= 2,
                "{kind:?}: both t1 and t2 need their city fixed"
            );
            let ct = cust_schema().resolve("CT").unwrap();
            assert_eq!(result.repaired.row(0).unwrap()[ct], Value::from("MH"));
            assert_eq!(result.repaired.row(1).unwrap()[ct], Value::from("MH"));
            assert!(result.cost >= 2.0);
            // Untouched rows stay untouched.
            assert_eq!(result.repaired.row(4).unwrap(), rel.row(4).unwrap());
        }
    }

    #[test]
    fn clean_data_is_left_unchanged() {
        let rel = cust_instance();
        for kind in BOTH {
            let result = kind.repair(&[cfd_datagen::cust::phi1()], &rel);
            assert!(result.satisfied);
            assert_eq!(result.changes(), 0, "{kind:?}");
            assert_eq!(result.cost, 0.0);
            assert_eq!(result.repaired, rel);
        }
    }

    #[test]
    fn multi_tuple_violations_move_minority_to_plurality() {
        // Three tuples agree on the LHS; two say "PHI", one says "NYC".
        let schema = Schema::builder("r").text("A").text("B").build();
        let mut rel = Relation::new(schema.clone());
        for b in ["PHI", "PHI", "NYC"] {
            rel.push_values(vec![Value::from("x"), Value::from(b)])
                .unwrap();
        }
        let fd = Cfd::fd(schema.clone(), ["A"], ["B"]).unwrap();
        for kind in BOTH {
            let result = kind.repair(std::slice::from_ref(&fd), &rel);
            assert!(result.satisfied);
            assert_eq!(result.changes(), 1, "{kind:?}");
            let b = schema.resolve("B").unwrap();
            assert!(result
                .repaired
                .iter()
                .all(|(_, t)| t[b] == Value::from("PHI")));
        }
    }

    #[test]
    fn tuple_weights_override_the_plurality_vote() {
        // Two rows say "PHI", one says "NYC" — but the NYC row carries ten
        // times the weight, so the weighted cost-minimal target is NYC.
        let schema = Schema::builder("r").text("A").text("B").build();
        let mut rel = Relation::new(schema.clone());
        for b in ["PHI", "PHI", "NYC"] {
            rel.push_values(vec![Value::from("x"), Value::from(b)])
                .unwrap();
        }
        let fd = Cfd::fd(schema.clone(), ["A"], ["B"]).unwrap();
        let mut weights = TupleWeights::default();
        weights.set(2, 10.0);
        let config = RepairConfig {
            kind: RepairKind::EquivClass,
            cost_model: CostModel {
                weights,
                ..CostModel::default()
            },
            ..RepairConfig::default()
        };
        let result = Repairer::with_config(config).repair(&[fd], &rel);
        assert!(result.satisfied);
        assert_eq!(result.changes(), 2, "both PHI rows move to NYC");
        let b = schema.resolve("B").unwrap();
        assert!(result
            .repaired
            .iter()
            .all(|(_, t)| t[b] == Value::from("NYC")));
        // Net cost: two unit edits.
        assert!((result.cost - 2.0).abs() < 1e-9);
    }

    fn section6_sigma() -> (Schema, Relation, Vec<Cfd>) {
        // Section 6's example: attr(R) = (A, B, C), I = {(a1,b1,c1), (a1,b2,c2)},
        // Σ = { (A -> B, (_ ‖ _)), (C -> B, {(c1, b1), (c2, b2)}) }.
        // Any repair must touch an LHS attribute of one of the embedded FDs.
        let schema = Schema::builder("R").text("A").text("B").text("C").build();
        let mut rel = Relation::new(schema.clone());
        rel.push_values(vec!["a1".into(), "b1".into(), "c1".into()])
            .unwrap();
        rel.push_values(vec!["a1".into(), "b2".into(), "c2".into()])
            .unwrap();
        let fd_ab = Cfd::fd(schema.clone(), ["A"], ["B"]).unwrap();
        let cfd_cb = Cfd::builder(schema.clone(), ["C"], ["B"])
            .pattern(["c1"], ["b1"])
            .pattern(["c2"], ["b2"])
            .build()
            .unwrap();
        (schema, rel, vec![fd_ab, cfd_cb])
    }

    #[test]
    fn lhs_edit_needed_for_the_paper_example() {
        let (schema, rel, sigma) = section6_sigma();
        assert!(CfdSet::from_cfds(sigma.clone())
            .unwrap()
            .is_consistent()
            .unwrap());

        for kind in BOTH {
            let result = kind.repair(&sigma, &rel);
            assert!(result.satisfied, "{kind:?} must find a repair");
            // At least one modification touches A or C (an LHS attribute).
            let a = schema.resolve("A").unwrap();
            let c = schema.resolve("C").unwrap();
            assert!(
                result
                    .modifications
                    .iter()
                    .any(|m| m.attr == a || m.attr == c),
                "{kind:?}: this instance cannot be repaired by RHS edits alone: {:?}",
                result.modifications
            );

            // With LHS edits disabled the engines cannot fully repair it.
            let stuck = Repairer::with_config(RepairConfig {
                kind,
                allow_lhs_edits: false,
                ..RepairConfig::default()
            })
            .repair(&sigma, &rel);
            assert!(!stuck.satisfied, "{kind:?}");
        }
    }

    #[test]
    fn conflicted_class_keeps_its_merge_and_pin_obligations() {
        // Like the Section 6 instance, but with B values (b9, b8) matching
        // NEITHER pin: one class carries an FD merge plus two incompatible
        // pins. Resolving the conflict with an LHS edit must not drop the
        // class's surviving obligations (the kept pin and the merge) — they
        // live in groups the LHS edit itself never touches.
        let schema = Schema::builder("R").text("A").text("B").text("C").build();
        let mut rel = Relation::new(schema.clone());
        rel.push_values(vec!["a1".into(), "b9".into(), "c1".into()])
            .unwrap();
        rel.push_values(vec!["a1".into(), "b8".into(), "c2".into()])
            .unwrap();
        let fd_ab = Cfd::fd(schema.clone(), ["A"], ["B"]).unwrap();
        let cfd_cb = Cfd::builder(schema, ["C"], ["B"])
            .pattern(["c1"], ["b1"])
            .pattern(["c2"], ["b2"])
            .build()
            .unwrap();
        let sigma = vec![fd_ab, cfd_cb];
        for kind in BOTH {
            let result = kind.repair(&sigma, &rel);
            assert!(
                result.satisfied,
                "{kind:?} must fully repair the conflicted instance: {:?}",
                result.modifications
            );
            assert!(sigma.iter().all(|c| c.satisfied_by(&result.repaired)));
        }
    }

    #[test]
    fn lhs_edit_repairs_are_reproducible_within_a_process() {
        // Placeholder spellings are numbered per run (with safe reuse), so
        // repeating a repair that needs LHS edits yields byte-identical
        // modification logs — including the placeholder values themselves.
        let (_, rel, sigma) = section6_sigma();
        for kind in BOTH {
            let first = kind.repair(&sigma, &rel);
            assert!(first.satisfied);
            assert!(
                first
                    .modifications
                    .iter()
                    .any(|m| placeholder::is_placeholder_value(&m.new)),
                "{kind:?}: the workload must exercise an LHS edit"
            );
            for run in 0..3 {
                let again = kind.repair(&sigma, &rel);
                assert_eq!(
                    again.modifications, first.modifications,
                    "{kind:?} run {run}: LHS-edit repairs diverged"
                );
                assert_eq!(again.repaired, first.repaired, "{kind:?} run {run}");
            }
        }
    }

    #[test]
    fn oscillating_cross_cfd_edits_do_not_inflate_the_net_cost() {
        // In the Section 6 instance the heuristic's first pass drives row 1's
        // B cell b2 → b1 (FD plurality, smallest-value tie) and straight back
        // b1 → b2 (the (c2 ‖ b2) pattern constant): a raw per-touch sum would
        // charge that cell twice although it ends where it started. The net
        // cost prices first-old → final-new per cell.
        let (_, rel, sigma) = section6_sigma();
        let result = RepairKind::Heuristic.repair(&sigma, &rel);
        assert!(result.satisfied);
        let b = AttrId(1);
        let b_touches = result
            .modifications
            .iter()
            .filter(|m| m.attr == b && m.row == 1)
            .count();
        assert!(
            b_touches >= 2,
            "the raw log must show the oscillation: {:?}",
            result.modifications
        );
        // The oscillating cell nets out; only the placeholder LHS edit is
        // priced (placeholder_distance = 1.5 by default).
        let net = result.net_modifications();
        assert!(
            net.iter().all(|m| !(m.attr == b && m.row == 1)),
            "the oscillating cell must net out: {net:?}"
        );
        assert!(
            (result.cost - 1.5).abs() < 1e-9,
            "only the LHS placeholder edit is priced, got {}",
            result.cost
        );
    }

    #[test]
    fn net_modifications_fold_the_raw_log() {
        let mods = vec![
            Modification {
                row: 0,
                attr: AttrId(1),
                old: "x".into(),
                new: "y".into(),
            },
            Modification {
                row: 0,
                attr: AttrId(1),
                old: "y".into(),
                new: "x".into(),
            },
            Modification {
                row: 2,
                attr: AttrId(0),
                old: "p".into(),
                new: "q".into(),
            },
        ];
        let result = RepairResult {
            repaired: Relation::new(Schema::builder("r").text("A").text("B").build()),
            modifications: mods,
            cost: 0.0,
            satisfied: true,
            passes: 1,
        };
        let net = result.net_modifications();
        assert_eq!(net.len(), 1, "the oscillating cell folds away");
        assert_eq!(net[0].row, 2);
        assert_eq!(net[0].old, Value::from("p"));
        assert_eq!(net[0].new, Value::from("q"));
    }

    #[test]
    fn stall_check_counts_pairs_not_witnesses() {
        // Two single-tuple witnesses over the same (pattern, row) collapse to
        // one pair; distinct rows count separately.
        let w1 = ViolationWitness {
            pattern_index: 0,
            kind: ViolationKind::SingleTuple,
            rows: vec![3],
        };
        let w2 = ViolationWitness {
            pattern_index: 0,
            kind: ViolationKind::MultiTuple,
            rows: vec![3, 4],
        };
        assert_eq!(count_violating_pairs([(0, &w1), (0, &w2)]), 2);
        // The same rows under another CFD are new pairs.
        assert_eq!(count_violating_pairs([(0, &w1), (1, &w1)]), 2);
        assert_eq!(
            count_violating_pairs([] as [(usize, &ViolationWitness); 0]),
            0
        );
    }

    #[test]
    fn typed_placeholders_respect_integer_columns() {
        // An FD whose LHS is an INTEGER column, violated so only an LHS edit
        // can repair it: [SA] -> [TX] merged with two CFDs pinning the same
        // SA group to different TX constants (pattern constants built from
        // typed values — the string builder would intern "100" as text).
        use cfd_core::{PatternTableau, PatternTuple, PatternValue};
        let schema = Schema::builder("r").integer("SA").integer("TX").build();
        let mut rel = Relation::new(schema.clone());
        rel.push_values(vec![Value::Int(100), Value::Int(10)])
            .unwrap();
        rel.push_values(vec![Value::Int(100), Value::Int(20)])
            .unwrap();
        let fd = Cfd::fd(schema.clone(), ["SA"], ["TX"]).unwrap();
        let sa = schema.resolve("SA").unwrap();
        let tx = schema.resolve("TX").unwrap();
        let pin_to = |target: i64| {
            let mut t = PatternTableau::new();
            t.push(PatternTuple::new(
                vec![PatternValue::from(Value::Int(100))],
                vec![PatternValue::from(Value::Int(target))],
            ));
            Cfd::from_parts(schema.clone(), vec![sa], vec![tx], t).unwrap()
        };
        let pin10 = pin_to(10);
        let pin20 = pin_to(20);

        for kind in BOTH {
            let result = kind.repair(&[fd.clone(), pin10.clone(), pin20.clone()], &rel);
            // The conflicting pins force LHS (SA) placeholder edits; SA is an
            // integer column, so the placeholder must be an integer.
            let sa_placeholders: Vec<&Modification> = result
                .modifications
                .iter()
                .filter(|m| m.attr == sa && placeholder::is_placeholder_value(&m.new))
                .collect();
            assert!(
                !sa_placeholders.is_empty(),
                "{kind:?} must fall back to an LHS edit: {:?}",
                result.modifications
            );
            for m in &sa_placeholders {
                assert!(
                    matches!(m.new, Value::Int(_)),
                    "{kind:?}: integer column received a non-integer placeholder: {m}"
                );
            }
            // Schema typing is preserved across the whole repaired instance.
            for (_, row) in result.repaired.iter() {
                assert!(matches!(row[sa], Value::Int(_)));
                assert!(matches!(row[tx], Value::Int(_)));
            }
        }

        // The explicit bypass: untyped placeholders are strings even on
        // integer columns.
        let config = RepairConfig {
            typed_placeholders: false,
            ..RepairConfig::default()
        };
        let result = Repairer::with_config(config).repair(&[fd, pin10, pin20], &rel);
        let ph = result
            .modifications
            .iter()
            .find(|m| placeholder::is_placeholder_value(&m.new))
            .expect("an LHS placeholder edit must occur");
        assert!(matches!(ph.new, Value::Str(_)));
    }

    #[test]
    fn repairs_noisy_tax_records() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 400,
            noise_percent: 10.0,
            seed: 77,
        })
        .generate();
        let workload = CfdWorkload::new(3);
        let cfds = vec![
            workload.zip_state_full(),
            workload.single(EmbeddedFd::AreaToCity, 400, 100.0),
        ];
        assert!(cfds.iter().any(|c| !c.satisfied_by(&noisy.relation)));
        for kind in BOTH {
            let result = kind.repair(&cfds, &noisy.relation);
            assert!(
                result.satisfied,
                "{kind:?}: tax workload must be repairable"
            );
            assert!(result.changes() > 0);
            assert!(
                result.changes() <= noisy.dirty_rows.len() * 3,
                "{kind:?}: repair should not rewrite much more than the injected noise"
            );
        }
    }

    #[test]
    fn class_engine_repairs_are_byte_deterministic() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 300,
            noise_percent: 12.0,
            seed: 4242,
        })
        .generate();
        let workload = CfdWorkload::new(5);
        let cfds = vec![
            workload.zip_state_full(),
            workload.single(EmbeddedFd::AreaToCity, 200, 100.0),
        ];
        let first = RepairKind::EquivClass.repair(&cfds, &noisy.relation);
        assert!(first.satisfied);
        assert!(
            first
                .modifications
                .iter()
                .all(|m| !placeholder::is_placeholder_value(&m.new)),
            "this workload repairs without LHS edits"
        );
        for _ in 0..3 {
            let again = RepairKind::EquivClass.repair(&cfds, &noisy.relation);
            assert_eq!(again.modifications, first.modifications);
            assert_eq!(again.repaired, first.repaired);
            assert_eq!(again.cost, first.cost);
            assert_eq!(again.passes, first.passes);
        }
    }

    #[test]
    fn repair_of_phi2_only_touches_rhs_attributes() {
        let rel = cust_instance();
        for kind in BOTH {
            let result = kind.repair(&[phi2()], &rel);
            assert!(result.satisfied);
            let rhs: Vec<AttrId> = phi2().rhs().to_vec();
            assert!(
                result.modifications.iter().all(|m| rhs.contains(&m.attr)),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn dont_care_cfds_fall_back_to_full_rescans_soundly() {
        // A merged-style tableau with @ cells: the class engine must not use
        // keyed rechecks for it, and still converge.
        let schema = cust_schema();
        let cfd = Cfd::builder(schema, ["CC", "AC", "CT"], ["CT", "AC"])
            .pattern(["01", "215", "@"], ["PHI", "@"])
            .build()
            .unwrap();
        let mut rel = cust_instance();
        rel.set_value(4, AttrId(5), Value::from("NYC"));
        assert!(!cfd.satisfied_by(&rel));
        for kind in BOTH {
            let result = kind.repair(std::slice::from_ref(&cfd), &rel);
            assert!(result.satisfied, "{kind:?}");
            assert_eq!(
                result.repaired.row(4).unwrap()[AttrId(5)],
                Value::from("PHI")
            );
        }
    }

    #[test]
    fn result_reports_passes_and_display() {
        let rel = cust_instance();
        for kind in BOTH {
            let result = kind.repair(&[phi2()], &rel);
            assert!(result.passes >= 1, "{kind:?}");
            let m = &result.modifications[0];
            let shown = m.to_string();
            assert!(shown.contains("->"));
        }
    }

    #[test]
    fn prebuilt_indexes_give_byte_identical_repairs() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 350,
            noise_percent: 10.0,
            seed: 90,
        })
        .generate();
        let workload = CfdWorkload::new(4);
        let cfds = vec![
            workload.zip_state_full(),
            workload.single(EmbeddedFd::AreaToCity, 150, 100.0),
        ];
        for kind in BOTH {
            let repairer = Repairer::with_config(RepairConfig {
                kind,
                ..RepairConfig::default()
            });
            let fresh = repairer.repair(&cfds, &noisy.relation);
            let shared: Vec<Option<cfd_relation::Index>> = cfds
                .iter()
                .map(|c| Some(noisy.relation.build_index(c.lhs())))
                .collect();
            let reused = repairer.repair_with_indexes(&cfds, &noisy.relation, shared);
            assert_eq!(reused.modifications, fresh.modifications, "{kind:?}");
            assert_eq!(reused.repaired, fresh.repaired, "{kind:?}");
            assert_eq!(reused.cost, fresh.cost, "{kind:?}");
            assert_eq!(reused.passes, fresh.passes, "{kind:?}");
            assert_eq!(reused.satisfied, fresh.satisfied, "{kind:?}");
            // `None` slots fall back to internal index building.
            let partial = repairer.repair_with_indexes(
                &cfds,
                &noisy.relation,
                vec![None, Some(noisy.relation.build_index(cfds[1].lhs()))],
            );
            assert_eq!(partial.modifications, fresh.modifications, "{kind:?}");
        }
    }

    #[test]
    fn class_target_helper_matches_engine_choice() {
        // Two rows say PHI, one says NYC: the unit-distance class target is
        // the plurality value, with its selection cost.
        let schema = Schema::builder("r").text("A").text("B").build();
        let mut rel = Relation::new(schema.clone());
        for b in ["PHI", "PHI", "NYC"] {
            rel.push_values(vec![Value::from("x"), Value::from(b)])
                .unwrap();
        }
        let b = schema.resolve("B").unwrap();
        let model = CostModel::default();
        let (target, cost) = model.class_target(&rel, &[(0, b), (1, b), (2, b)]).unwrap();
        assert_eq!(target.resolve(), &Value::from("PHI"));
        assert!((cost - 1.0).abs() < 1e-9, "one disagreeing row, got {cost}");
        assert!(model.class_target(&rel, &[]).is_none());
    }

    #[test]
    fn repairer_front_end_dispatches_and_exposes_config() {
        let r = Repairer::new();
        assert_eq!(r.config().kind, RepairKind::EquivClass);
        let h = Repairer::heuristic();
        assert_eq!(h.config().kind, RepairKind::Heuristic);
        assert!(Arc::strong_count(&r.config().cost_model.distance) >= 1);
        // The default distance is the unit metric.
        assert_eq!(
            r.config()
                .cost_model
                .distance
                .distance(&Value::from("a"), &Value::from("b")),
            UnitDistance.distance(&Value::from("a"), &Value::from("b"))
        );
    }
}
