//! The heuristic repair algorithm.

use crate::cost::{placeholder, CostModel};
use cfd_core::{Cfd, ViolationKind};
use cfd_relation::{AttrId, Relation, Value, ValueId};
use std::collections::HashMap;
use std::fmt;

/// One cell modification performed by the repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Modification {
    /// Index of the modified row.
    pub row: usize,
    /// Modified attribute.
    pub attr: AttrId,
    /// Value before the modification.
    pub old: Value,
    /// Value after the modification.
    pub new: Value,
}

impl fmt::Display for Modification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row {} attr {}: {} -> {}",
            self.row, self.attr, self.old, self.new
        )
    }
}

/// Configuration of the repair heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairConfig {
    /// Maximum number of full passes over the CFD set before giving up.
    pub max_passes: usize,
    /// Cost model used to price modifications.
    pub cost_model: CostModel,
    /// Whether LHS placeholder edits are allowed as a last resort.
    pub allow_lhs_edits: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_passes: 16,
            cost_model: CostModel::default(),
            allow_lhs_edits: true,
        }
    }
}

/// The outcome of a repair run.
#[derive(Debug, Clone)]
pub struct RepairResult {
    /// The repaired instance.
    pub repaired: Relation,
    /// Every modification applied, in application order.
    pub modifications: Vec<Modification>,
    /// Total cost of the modifications under the configured cost model.
    pub cost: f64,
    /// Whether the repaired instance satisfies every input CFD.
    pub satisfied: bool,
    /// Number of passes the heuristic used.
    pub passes: usize,
}

impl RepairResult {
    /// Number of modified cells.
    pub fn changes(&self) -> usize {
        self.modifications.len()
    }
}

/// The heuristic repairer.
#[derive(Debug, Clone, Default)]
pub struct Repairer {
    config: RepairConfig,
}

impl Repairer {
    /// A repairer with the default configuration.
    pub fn new() -> Self {
        Repairer::default()
    }

    /// A repairer with an explicit configuration.
    pub fn with_config(config: RepairConfig) -> Self {
        Repairer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }

    /// Repairs `rel` with respect to `cfds` by attribute-value modification.
    ///
    /// The input CFD set should be consistent (an inconsistent set admits no
    /// repair; the result will report `satisfied == false`).
    pub fn repair(&self, cfds: &[Cfd], rel: &Relation) -> RepairResult {
        let mut repaired = rel.clone();
        let mut modifications: Vec<Modification> = Vec::new();
        let mut placeholder_counter = 0usize;
        let mut passes = 0usize;

        let violation_count =
            |rel: &Relation| cfds.iter().map(|c| c.violations(rel).len()).sum::<usize>();

        for _ in 0..self.config.max_passes {
            passes += 1;
            let before = violation_count(&repaired);

            for cfd in cfds {
                self.resolve_constant_violations(cfd, &mut repaired, &mut modifications);
                self.resolve_group_violations(cfd, &mut repaired, &mut modifications);
            }

            let after = violation_count(&repaired);
            if after == 0 {
                break;
            }
            if after >= before {
                // RHS edits are oscillating or stuck (the cross-CFD interaction
                // of Section 6): fall back to an LHS edit, which removes one
                // violating tuple from the pattern's scope.
                if !self.config.allow_lhs_edits
                    || !self.apply_lhs_edit(
                        cfds,
                        &mut repaired,
                        &mut modifications,
                        &mut placeholder_counter,
                    )
                {
                    break;
                }
            }
        }

        let satisfied = cfds.iter().all(|c| c.satisfied_by(&repaired));
        let cost = modifications
            .iter()
            .map(|m| self.config.cost_model.change_cost(&m.old, &m.new))
            .sum();
        RepairResult {
            repaired,
            modifications,
            cost,
            satisfied,
            passes,
        }
    }

    /// Overwrites RHS attributes that contradict a pattern constant.
    /// Current cells are compared as interned ids straight off the columns;
    /// values are resolved only when a modification is recorded.
    fn resolve_constant_violations(
        &self,
        cfd: &Cfd,
        rel: &mut Relation,
        modifications: &mut Vec<Modification>,
    ) {
        let witnesses: Vec<_> = cfd
            .violations(rel)
            .into_iter()
            .filter(|w| w.kind == ViolationKind::SingleTuple)
            .collect();
        for w in witnesses {
            let pattern = &cfd.tableau().rows()[w.pattern_index];
            for &row_idx in &w.rows {
                for (attr, cell) in cfd.rhs().iter().zip(pattern.rhs()) {
                    if let Some(target) = cell.const_id() {
                        let current = rel.column(*attr)[row_idx];
                        if current != target {
                            rel.set_id(row_idx, *attr, target);
                            modifications.push(Modification {
                                row: row_idx,
                                attr: *attr,
                                old: current.resolve().clone(),
                                new: target.resolve().clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Resolves multi-tuple violations per equivalence class by moving the
    /// minority to the plurality `Y` projection. Counting runs on interned
    /// id keys; count ties break deterministically on the resolved values
    /// (never on hash-map iteration order).
    fn resolve_group_violations(
        &self,
        cfd: &Cfd,
        rel: &mut Relation,
        modifications: &mut Vec<Modification>,
    ) {
        let witnesses: Vec<_> = cfd
            .violations(rel)
            .into_iter()
            .filter(|w| w.kind == ViolationKind::MultiTuple)
            .collect();
        for w in witnesses {
            // Count the Y projections in this class and pick the plurality.
            let mut counts: HashMap<Vec<ValueId>, usize> = HashMap::new();
            for &row_idx in &w.rows {
                let key = rel.row(row_idx).expect("witness row in range");
                *counts.entry(key.project_ids(cfd.rhs())).or_insert(0) += 1;
            }
            // Resolve each distinct key once, then pick the highest count,
            // breaking ties on the smallest resolved key (deterministic and
            // allocation-free inside the comparison loop).
            let resolved: Vec<(Vec<ValueId>, usize, Vec<&Value>)> = counts
                .into_iter()
                .map(|(k, c)| {
                    let vals: Vec<&Value> = k.iter().map(|id| id.resolve()).collect();
                    (k, c, vals)
                })
                .collect();
            let Some((target, _, _)) = resolved
                .into_iter()
                .max_by(|(_, ca, va), (_, cb, vb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            else {
                continue;
            };
            for &row_idx in &w.rows {
                for (pos, attr) in cfd.rhs().iter().enumerate() {
                    let current = rel.column(*attr)[row_idx];
                    if current != target[pos] {
                        rel.set_id(row_idx, *attr, target[pos]);
                        modifications.push(Modification {
                            row: row_idx,
                            attr: *attr,
                            old: current.resolve().clone(),
                            new: target[pos].resolve().clone(),
                        });
                    }
                }
            }
        }
    }

    /// Breaks one remaining violation by overwriting an LHS attribute of one
    /// violating tuple with a fresh placeholder, taking it out of the
    /// pattern's scope. Returns whether an edit was applied.
    fn apply_lhs_edit(
        &self,
        cfds: &[Cfd],
        rel: &mut Relation,
        modifications: &mut Vec<Modification>,
        placeholder_counter: &mut usize,
    ) -> bool {
        for cfd in cfds {
            let Some(witness) = cfd.first_violation(rel) else {
                continue;
            };
            let Some(&row_idx) = witness.rows.first() else {
                continue;
            };
            // Prefer an LHS attribute whose pattern cell is a constant (so the
            // placeholder breaks the match); otherwise take the first LHS attr.
            let pattern = &cfd.tableau().rows()[witness.pattern_index];
            let attr = cfd
                .lhs()
                .iter()
                .zip(pattern.lhs())
                .find(|(_, cell)| cell.is_const())
                .map(|(a, _)| *a)
                .or_else(|| cfd.lhs().first().copied());
            let Some(attr) = attr else { continue };
            let old = rel.column(attr)[row_idx].resolve().clone();
            let new = placeholder(*placeholder_counter);
            *placeholder_counter += 1;
            rel.set_value(row_idx, attr, new.clone());
            modifications.push(Modification {
                row: row_idx,
                attr,
                old,
                new,
            });
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::CfdSet;
    use cfd_datagen::cust::{cust_instance, cust_schema, fig2_cfd_set, phi2};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::Schema;

    #[test]
    fn repairs_the_running_example() {
        // Fig. 1 violates ϕ2 (area code 908 should imply city MH).
        let rel = cust_instance();
        let cfds: Vec<Cfd> = fig2_cfd_set().into_iter().collect();
        let result = Repairer::new().repair(&cfds, &rel);
        assert!(result.satisfied, "repair must satisfy the CFDs");
        assert!(
            result.changes() >= 2,
            "both t1 and t2 need their city fixed"
        );
        let ct = cust_schema().resolve("CT").unwrap();
        assert_eq!(result.repaired.row(0).unwrap()[ct], Value::from("MH"));
        assert_eq!(result.repaired.row(1).unwrap()[ct], Value::from("MH"));
        assert!(result.cost >= 2.0);
        // Untouched rows stay untouched.
        assert_eq!(result.repaired.row(4).unwrap(), rel.row(4).unwrap());
    }

    #[test]
    fn clean_data_is_left_unchanged() {
        let rel = cust_instance();
        let result = Repairer::new().repair(&[cfd_datagen::cust::phi1()], &rel);
        assert!(result.satisfied);
        assert_eq!(result.changes(), 0);
        assert_eq!(result.cost, 0.0);
        assert_eq!(result.repaired, rel);
    }

    #[test]
    fn multi_tuple_violations_move_minority_to_plurality() {
        // Three tuples agree on the LHS; two say "PHI", one says "NYC".
        let schema = Schema::builder("r").text("A").text("B").build();
        let mut rel = Relation::new(schema.clone());
        for b in ["PHI", "PHI", "NYC"] {
            rel.push_values(vec![Value::from("x"), Value::from(b)])
                .unwrap();
        }
        let fd = Cfd::fd(schema.clone(), ["A"], ["B"]).unwrap();
        let result = Repairer::new().repair(&[fd], &rel);
        assert!(result.satisfied);
        assert_eq!(result.changes(), 1);
        let b = schema.resolve("B").unwrap();
        assert!(result
            .repaired
            .iter()
            .all(|(_, t)| t[b] == Value::from("PHI")));
    }

    #[test]
    fn lhs_edit_needed_for_the_paper_example() {
        // Section 6's example: attr(R) = (A, B, C), I = {(a1,b1,c1), (a1,b2,c2)},
        // Σ = { (A -> B, (_ ‖ _)), (C -> B, {(c1, b1), (c2, b2)}) }.
        // Any repair must touch an LHS attribute of one of the embedded FDs.
        let schema = Schema::builder("R").text("A").text("B").text("C").build();
        let mut rel = Relation::new(schema.clone());
        rel.push_values(vec!["a1".into(), "b1".into(), "c1".into()])
            .unwrap();
        rel.push_values(vec!["a1".into(), "b2".into(), "c2".into()])
            .unwrap();
        let fd_ab = Cfd::fd(schema.clone(), ["A"], ["B"]).unwrap();
        let cfd_cb = Cfd::builder(schema.clone(), ["C"], ["B"])
            .pattern(["c1"], ["b1"])
            .pattern(["c2"], ["b2"])
            .build()
            .unwrap();
        let sigma = vec![fd_ab, cfd_cb];
        assert!(CfdSet::from_cfds(sigma.clone())
            .unwrap()
            .is_consistent()
            .unwrap());

        let result = Repairer::new().repair(&sigma, &rel);
        assert!(result.satisfied, "the heuristic must find a repair");
        // At least one modification touches A or C (an LHS attribute).
        let a = schema.resolve("A").unwrap();
        let c = schema.resolve("C").unwrap();
        assert!(
            result
                .modifications
                .iter()
                .any(|m| m.attr == a || m.attr == c),
            "this instance cannot be repaired by RHS edits alone: {:?}",
            result.modifications
        );

        // With LHS edits disabled the heuristic cannot fully repair it.
        let stuck = Repairer::with_config(RepairConfig {
            allow_lhs_edits: false,
            ..RepairConfig::default()
        })
        .repair(&sigma, &rel);
        assert!(!stuck.satisfied);
    }

    #[test]
    fn repairs_noisy_tax_records() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 400,
            noise_percent: 10.0,
            seed: 77,
        })
        .generate();
        let workload = CfdWorkload::new(3);
        let cfds = vec![
            workload.zip_state_full(),
            workload.single(EmbeddedFd::AreaToCity, 400, 100.0),
        ];
        assert!(cfds.iter().any(|c| !c.satisfied_by(&noisy.relation)));
        let result = Repairer::new().repair(&cfds, &noisy.relation);
        assert!(result.satisfied, "tax workload must be repairable");
        assert!(result.changes() > 0);
        assert!(
            result.changes() <= noisy.dirty_rows.len() * 3,
            "repair should not rewrite much more than the injected noise"
        );
    }

    #[test]
    fn repair_of_phi2_only_touches_rhs_attributes() {
        let rel = cust_instance();
        let result = Repairer::new().repair(&[phi2()], &rel);
        assert!(result.satisfied);
        let rhs: Vec<AttrId> = phi2().rhs().to_vec();
        assert!(result.modifications.iter().all(|m| rhs.contains(&m.attr)));
    }

    #[test]
    fn result_reports_passes_and_display() {
        let rel = cust_instance();
        let result = Repairer::new().repair(&[phi2()], &rel);
        assert!(result.passes >= 1);
        let m = &result.modifications[0];
        let shown = m.to_string();
        assert!(shown.contains("->"));
    }
}
