//! Compiled expressions: column references resolved to `(table slot, AttrId)`
//! and literals resolved to interned [`ValueId`]s.
//!
//! The symbolic [`Expr`] AST is convenient to build and
//! render, but evaluating it per joined row resolves attribute names through
//! hash maps and clones cell values. The detection workloads evaluate the
//! WHERE clause for up to `SZ × TABSZ` row pairs (hundreds of millions for
//! the CNF strategy of Fig. 9), so the executor first *compiles* expressions
//! into this resolved form and evaluates them against a slot-indexed array of
//! tuples. Evaluation is entirely id-based: a column read is an array index,
//! an equality is a `u32` compare, and boolean results are the interner's
//! fixed [`ValueId::TRUE`]/[`ValueId::FALSE`] ids — no allocation, no string
//! comparison, no cloning anywhere in the per-row loop.

use crate::ast::Expr;
use crate::error::{Result, SqlError};
use cfd_relation::{AttrId, Relation, RowRef, Value, ValueId};
use std::sync::Arc;

/// An expression with all column references resolved to table slots and all
/// literals interned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledExpr {
    /// Column of the tuple bound at `table` slot.
    Col {
        /// Index into the row-slot array.
        table: usize,
        /// Attribute within that table's schema.
        attr: AttrId,
    },
    /// An interned literal value.
    Lit(ValueId),
    /// Equality.
    Eq(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Inequality.
    Ne(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Conjunction.
    And(Vec<CompiledExpr>),
    /// Disjunction.
    Or(Vec<CompiledExpr>),
    /// Negation.
    Not(Box<CompiledExpr>),
    /// Simple CASE.
    Case {
        /// Compared operand.
        operand: Box<CompiledExpr>,
        /// `(match, result)` arms.
        arms: Vec<(CompiledExpr, CompiledExpr)>,
        /// Fallback result.
        otherwise: Box<CompiledExpr>,
    },
}

impl CompiledExpr {
    /// Resolves `expr` against the FROM-clause tables (`(alias, relation)`
    /// pairs, in slot order).
    pub fn compile(expr: &Expr, tables: &[(String, Arc<Relation>)]) -> Result<CompiledExpr> {
        Ok(match expr {
            Expr::Column { table, column } => {
                let slot = tables
                    .iter()
                    .position(|(alias, _)| alias == table)
                    .ok_or_else(|| SqlError::UnknownTable(table.clone()))?;
                let attr = tables[slot].1.schema().resolve(column).map_err(|_| {
                    SqlError::UnknownColumn {
                        table: table.clone(),
                        column: column.clone(),
                    }
                })?;
                CompiledExpr::Col { table: slot, attr }
            }
            Expr::Literal(v) => CompiledExpr::Lit(ValueId::of(v)),
            Expr::Eq(a, b) => CompiledExpr::Eq(
                Box::new(Self::compile(a, tables)?),
                Box::new(Self::compile(b, tables)?),
            ),
            Expr::Ne(a, b) => CompiledExpr::Ne(
                Box::new(Self::compile(a, tables)?),
                Box::new(Self::compile(b, tables)?),
            ),
            Expr::And(ops) => CompiledExpr::And(
                ops.iter()
                    .map(|e| Self::compile(e, tables))
                    .collect::<Result<_>>()?,
            ),
            Expr::Or(ops) => CompiledExpr::Or(
                ops.iter()
                    .map(|e| Self::compile(e, tables))
                    .collect::<Result<_>>()?,
            ),
            Expr::Not(e) => CompiledExpr::Not(Box::new(Self::compile(e, tables)?)),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => CompiledExpr::Case {
                operand: Box::new(Self::compile(operand, tables)?),
                arms: arms
                    .iter()
                    .map(|(m, r)| Ok((Self::compile(m, tables)?, Self::compile(r, tables)?)))
                    .collect::<Result<_>>()?,
                otherwise: Box::new(Self::compile(otherwise, tables)?),
            },
        })
    }

    /// Whether the expression references the given table slot.
    pub fn references_slot(&self, slot: usize) -> bool {
        match self {
            CompiledExpr::Col { table, .. } => *table == slot,
            CompiledExpr::Lit(_) => false,
            CompiledExpr::Eq(a, b) | CompiledExpr::Ne(a, b) => {
                a.references_slot(slot) || b.references_slot(slot)
            }
            CompiledExpr::And(ops) | CompiledExpr::Or(ops) => {
                ops.iter().any(|e| e.references_slot(slot))
            }
            CompiledExpr::Not(e) => e.references_slot(slot),
            CompiledExpr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.references_slot(slot)
                    || otherwise.references_slot(slot)
                    || arms
                        .iter()
                        .any(|(m, r)| m.references_slot(slot) || r.references_slot(slot))
            }
        }
    }

    /// Evaluates to an interned value id. `rows[slot]` may be `None` for
    /// tables not yet bound; referencing such a slot is an error.
    ///
    /// This is the hot path: row slots hold copy-free [`RowRef`] views into
    /// the columnar store, a column read is one array index into the bound
    /// relation's column, every comparison is a `u32` compare and boolean
    /// results are the fixed [`ValueId::TRUE`]/[`ValueId::FALSE`] ids.
    pub fn eval_id(&self, rows: &[Option<RowRef<'_>>]) -> Result<ValueId> {
        match self {
            CompiledExpr::Col { table, attr } => {
                let row = rows
                    .get(*table)
                    .copied()
                    .flatten()
                    .ok_or_else(|| SqlError::Unsupported("unbound table slot".into()))?;
                Ok(row.id_at(*attr))
            }
            CompiledExpr::Lit(id) => Ok(*id),
            CompiledExpr::Eq(a, b) => Ok(bool_id(a.eval_id(rows)? == b.eval_id(rows)?)),
            CompiledExpr::Ne(a, b) => Ok(bool_id(a.eval_id(rows)? != b.eval_id(rows)?)),
            CompiledExpr::And(ops) => {
                for op in ops {
                    if !op.eval_bool(rows)? {
                        return Ok(ValueId::FALSE);
                    }
                }
                Ok(ValueId::TRUE)
            }
            CompiledExpr::Or(ops) => {
                for op in ops {
                    if op.eval_bool(rows)? {
                        return Ok(ValueId::TRUE);
                    }
                }
                Ok(ValueId::FALSE)
            }
            CompiledExpr::Not(e) => Ok(bool_id(!e.eval_bool(rows)?)),
            CompiledExpr::Case {
                operand,
                arms,
                otherwise,
            } => {
                let op = operand.eval_id(rows)?;
                for (m, r) in arms {
                    if m.eval_id(rows)? == op {
                        return r.eval_id(rows);
                    }
                }
                otherwise.eval_id(rows)
            }
        }
    }

    /// Evaluates to an owned value (boundary use; resolves the id).
    pub fn eval(&self, rows: &[Option<RowRef<'_>>]) -> Result<Value> {
        Ok(self.eval_id(rows)?.resolve().clone())
    }

    /// Evaluates as a predicate; non-boolean results are an error.
    pub fn eval_bool(&self, rows: &[Option<RowRef<'_>>]) -> Result<bool> {
        let id = self.eval_id(rows)?;
        if id == ValueId::TRUE {
            Ok(true)
        } else if id == ValueId::FALSE {
            Ok(false)
        } else {
            Err(SqlError::Unsupported(format!(
                "predicate evaluated to non-boolean value `{}`",
                id.resolve()
            )))
        }
    }
}

#[inline]
fn bool_id(b: bool) -> ValueId {
    if b {
        ValueId::TRUE
    } else {
        ValueId::FALSE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::Schema;

    fn tables() -> Vec<(String, Arc<Relation>)> {
        let data = {
            let schema = Schema::builder("r").text("A").text("B").build();
            let mut rel = Relation::new(schema);
            rel.push_values(vec!["x".into(), "y".into()]).unwrap();
            Arc::new(rel)
        };
        let tab = {
            let schema = Schema::builder("tp").text("A").text("B").build();
            let mut rel = Relation::new(schema);
            rel.push_values(vec!["x".into(), "_".into()]).unwrap();
            Arc::new(rel)
        };
        vec![("t".to_owned(), data), ("tp".to_owned(), tab)]
    }

    #[test]
    fn compile_resolves_columns_to_slots() {
        let ts = tables();
        let e = Expr::col("tp", "B").eq(Expr::str("_"));
        let c = CompiledExpr::compile(&e, &ts).unwrap();
        assert!(c.references_slot(1));
        assert!(!c.references_slot(0));
    }

    #[test]
    fn compile_rejects_unknown_references() {
        let ts = tables();
        assert!(matches!(
            CompiledExpr::compile(&Expr::col("zz", "A"), &ts),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            CompiledExpr::compile(&Expr::col("t", "NOPE"), &ts),
            Err(SqlError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn evaluation_matches_symbolic_semantics() {
        let ts = tables();
        let data_row = ts[0].1.row(0).unwrap();
        let tab_row = ts[1].1.row(0).unwrap();
        let rows = vec![Some(data_row), Some(tab_row)];

        // (t.A = tp.A OR tp.A = '_') AND (t.B = tp.B OR tp.B = '_')
        let e = Expr::and(vec![
            Expr::or(vec![
                Expr::col("t", "A").eq(Expr::col("tp", "A")),
                Expr::col("tp", "A").eq(Expr::str("_")),
            ]),
            Expr::or(vec![
                Expr::col("t", "B").eq(Expr::col("tp", "B")),
                Expr::col("tp", "B").eq(Expr::str("_")),
            ]),
        ]);
        let c = CompiledExpr::compile(&e, &ts).unwrap();
        assert!(c.eval_bool(&rows).unwrap());

        let case = Expr::case(
            Expr::col("tp", "B"),
            vec![(Expr::str("_"), Expr::str("masked"))],
            Expr::col("t", "B"),
        );
        let c = CompiledExpr::compile(&case, &ts).unwrap();
        assert_eq!(c.eval(&rows).unwrap(), Value::from("masked"));
    }

    #[test]
    fn boolean_results_use_fixed_ids() {
        let ts = tables();
        let rows: Vec<Option<RowRef>> = vec![None, None];
        let truthy = CompiledExpr::compile(&Expr::lit(1).eq(Expr::lit(1)), &ts).unwrap();
        assert_eq!(truthy.eval_id(&rows).unwrap(), ValueId::TRUE);
        let falsy = CompiledExpr::compile(&Expr::lit(1).eq(Expr::lit(2)), &ts).unwrap();
        assert_eq!(falsy.eval_id(&rows).unwrap(), ValueId::FALSE);
        assert_eq!(truthy.eval(&rows).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unbound_slot_is_an_error_but_short_circuit_avoids_it() {
        let ts = tables();
        let tab_row = ts[1].1.row(0).unwrap();
        let rows: Vec<Option<RowRef>> = vec![None, Some(tab_row)];
        let needs_t = CompiledExpr::compile(&Expr::col("t", "A"), &ts).unwrap();
        assert!(needs_t.eval(&rows).is_err());
        // The independent disjunct is true, so the data column is never read.
        let e = Expr::or(vec![
            Expr::col("tp", "B").eq(Expr::str("_")),
            Expr::col("t", "A").eq(Expr::str("x")),
        ]);
        let c = CompiledExpr::compile(&e, &ts).unwrap();
        assert!(c.eval_bool(&rows).unwrap());
    }

    #[test]
    fn non_boolean_predicate_is_an_error() {
        let ts = tables();
        let c = CompiledExpr::compile(&Expr::str("zzz"), &ts).unwrap();
        assert!(c.eval_bool(&[None, None]).is_err());
    }
}
