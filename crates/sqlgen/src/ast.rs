//! Abstract syntax for the SQL fragment needed by CFD detection.
//!
//! The fragment is exactly what Section 4 of the paper generates:
//!
//! ```sql
//! SELECT [DISTINCT] <items>
//! FROM   R t, T_p tp [, T_y tpy]
//! WHERE  <boolean combination of equality comparisons, possibly with CASE>
//! [GROUP BY <exprs> HAVING COUNT(DISTINCT <exprs>) > k]
//! ```
//!
//! Queries are plain data: they can be rendered to SQL text (for inspection,
//! documentation, or feeding an external engine) via [`std::fmt::Display`],
//! and executed in-process by [`crate::exec::Executor`].

use cfd_relation::Value;
use std::fmt;

/// A reference to a base relation in the FROM clause, with an alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Name of the relation in the catalog.
    pub name: String,
    /// Alias used to qualify column references (`t`, `tp`, …).
    pub alias: String,
}

impl TableRef {
    /// A table whose alias equals its name.
    pub fn named(name: impl Into<String>) -> Self {
        let name = name.into();
        TableRef {
            alias: name.clone(),
            name,
        }
    }

    /// A table with an explicit alias.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            name: name.into(),
            alias: alias.into(),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name == self.alias {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{} {}", self.name, self.alias)
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A column reference `alias.column`.
    Column {
        /// Table alias.
        table: String,
        /// Column name.
        column: String,
    },
    /// A literal value.
    Literal(Value),
    /// Equality comparison.
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality comparison.
    Ne(Box<Expr>, Box<Expr>),
    /// Conjunction of one or more operands.
    And(Vec<Expr>),
    /// Disjunction of one or more operands.
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Simple `CASE <operand> WHEN <match> THEN <result> … ELSE <else> END`.
    ///
    /// The merged detection queries of Section 4.2.2 use this to mask data
    /// values with the don't-care symbol `@`:
    /// `CASE tp.Xi WHEN '@' THEN '@' ELSE t.Xi END`.
    Case {
        /// The expression compared against each WHEN arm.
        operand: Box<Expr>,
        /// `(match, result)` arms, evaluated in order.
        arms: Vec<(Expr, Expr)>,
        /// Result when no arm matches.
        otherwise: Box<Expr>,
    },
}

impl Expr {
    /// Column reference `table.column`.
    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Self {
        Expr::Column {
            table: table.into(),
            column: column.into(),
        }
    }

    /// Literal value.
    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Literal(v.into())
    }

    /// String literal (common case).
    pub fn str(s: impl Into<String>) -> Self {
        Expr::Literal(Value::Str(s.into()))
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Self {
        Expr::Eq(Box::new(self), Box::new(rhs))
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Self {
        Expr::Ne(Box::new(self), Box::new(rhs))
    }

    /// Conjunction that flattens nested ANDs and drops duplicates of `TRUE`.
    pub fn and(operands: Vec<Expr>) -> Self {
        let mut flat = Vec::with_capacity(operands.len());
        for op in operands {
            match op {
                Expr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            // wslint: allow(panic_path, "pop of a vec whose len was just matched as 1")
            1 => flat.pop().expect("len checked"),
            _ => Expr::And(flat),
        }
    }

    /// Disjunction that flattens nested ORs.
    pub fn or(operands: Vec<Expr>) -> Self {
        let mut flat = Vec::with_capacity(operands.len());
        for op in operands {
            match op {
                Expr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            // wslint: allow(panic_path, "pop of a vec whose len was just matched as 1")
            1 => flat.pop().expect("len checked"),
            _ => Expr::Or(flat),
        }
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }

    /// Simple CASE expression.
    pub fn case(operand: Expr, arms: Vec<(Expr, Expr)>, otherwise: Expr) -> Self {
        Expr::Case {
            operand: Box::new(operand),
            arms,
            otherwise: Box::new(otherwise),
        }
    }

    /// Returns `true` iff the expression contains no column of the given
    /// table alias, i.e. it can be evaluated without binding that table.
    pub fn is_independent_of(&self, alias: &str) -> bool {
        match self {
            Expr::Column { table, .. } => table != alias,
            Expr::Literal(_) => true,
            Expr::Eq(a, b) | Expr::Ne(a, b) => {
                a.is_independent_of(alias) && b.is_independent_of(alias)
            }
            Expr::And(ops) | Expr::Or(ops) => ops.iter().all(|e| e.is_independent_of(alias)),
            Expr::Not(e) => e.is_independent_of(alias),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.is_independent_of(alias)
                    && otherwise.is_independent_of(alias)
                    && arms
                        .iter()
                        .all(|(m, r)| m.is_independent_of(alias) && r.is_independent_of(alias))
            }
        }
    }

    /// Collects every `(table, column)` pair referenced by the expression.
    pub fn referenced_columns(&self, out: &mut Vec<(String, String)>) {
        match self {
            Expr::Column { table, column } => out.push((table.clone(), column.clone())),
            Expr::Literal(_) => {}
            Expr::Eq(a, b) | Expr::Ne(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::And(ops) | Expr::Or(ops) => {
                for e in ops {
                    e.referenced_columns(out);
                }
            }
            Expr::Not(e) => e.referenced_columns(out),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.referenced_columns(out);
                for (m, r) in arms {
                    m.referenced_columns(out);
                    r.referenced_columns(out);
                }
                otherwise.referenced_columns(out);
            }
        }
    }

    /// Number of atomic (non-AND/OR/NOT) nodes; used to report query sizes in
    /// the ablation benchmarks and to assert the "bounded by the embedded FD"
    /// property of the generated detection queries.
    pub fn atom_count(&self) -> usize {
        match self {
            Expr::And(ops) | Expr::Or(ops) => ops.iter().map(Expr::atom_count).sum(),
            Expr::Not(e) => e.atom_count(),
            _ => 1,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table, column } => write!(f, "{table}.{column}"),
            Expr::Literal(v) => write!(f, "{}", v.render_sql()),
            Expr::Eq(a, b) => write!(f, "{a} = {b}"),
            Expr::Ne(a, b) => write!(f, "{a} <> {b}"),
            Expr::And(ops) => {
                if ops.is_empty() {
                    return write!(f, "TRUE");
                }
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    if matches!(op, Expr::Or(_)) {
                        write!(f, "({op})")?;
                    } else {
                        write!(f, "{op}")?;
                    }
                }
                Ok(())
            }
            Expr::Or(ops) => {
                if ops.is_empty() {
                    return write!(f, "FALSE");
                }
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    if matches!(op, Expr::And(_)) {
                        write!(f, "({op})")?;
                    } else {
                        write!(f, "{op}")?;
                    }
                }
                Ok(())
            }
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                write!(f, "CASE {operand}")?;
                for (m, r) in arms {
                    write!(f, " WHEN {m} THEN {r}")?;
                }
                write!(f, " ELSE {otherwise} END")
            }
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `alias.*` — all columns of one FROM-clause table.
    Wildcard {
        /// The table alias whose columns are selected.
        table: String,
    },
    /// A scalar expression with an optional output name.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name (`AS alias`).
        alias: Option<String>,
    },
}

impl SelectItem {
    /// `alias.*`.
    pub fn wildcard(table: impl Into<String>) -> Self {
        SelectItem::Wildcard {
            table: table.into(),
        }
    }

    /// A bare expression item.
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }

    /// An expression item with an output alias.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard { table } => write!(f, "{table}.*"),
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

/// The HAVING clause supported by the executor:
/// `COUNT(DISTINCT e1, …, ek) > threshold`, exactly the shape used by the
/// multi-tuple violation query `QV`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Having {
    /// Expressions whose distinct combined value is counted per group.
    pub count_distinct: Vec<Expr>,
    /// Groups pass iff the distinct count strictly exceeds this threshold.
    pub greater_than: u64,
}

impl fmt::Display for Having {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "count(distinct ")?;
        for (i, e) in self.count_distinct.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ") > {}", self.greater_than)
    }
}

/// A SELECT query over the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectQuery {
    /// Whether duplicate output rows are removed.
    pub distinct: bool,
    /// The SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM-clause tables; the executor computes their join filtered by
    /// [`SelectQuery::where_clause`].
    pub from: Vec<TableRef>,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
    /// Optional GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// Optional HAVING clause (requires a non-empty GROUP BY).
    pub having: Option<Having>,
}

impl SelectQuery {
    /// An empty query to be filled in with the builder-style methods.
    pub fn new() -> Self {
        SelectQuery {
            distinct: false,
            items: Vec::new(),
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        }
    }

    /// Marks the query `SELECT DISTINCT`.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Adds a SELECT item.
    pub fn item(mut self, item: SelectItem) -> Self {
        self.items.push(item);
        self
    }

    /// Adds a FROM table.
    pub fn from(mut self, table: TableRef) -> Self {
        self.from.push(table);
        self
    }

    /// Sets the WHERE clause (replacing any previous one).
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.where_clause = Some(predicate);
        self
    }

    /// Adds a GROUP BY expression.
    pub fn group(mut self, expr: Expr) -> Self {
        self.group_by.push(expr);
        self
    }

    /// Sets the HAVING clause.
    pub fn having_count_distinct_gt(mut self, exprs: Vec<Expr>, threshold: u64) -> Self {
        self.having = Some(Having {
            count_distinct: exprs,
            greater_than: threshold,
        });
        self
    }
}

impl Default for SelectQuery {
    fn default() -> Self {
        SelectQuery::new()
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_and_display() {
        let e = Expr::col("t", "CC").eq(Expr::str("01"));
        assert_eq!(e.to_string(), "t.CC = '01'");
        let e = Expr::or(vec![
            Expr::col("t", "CT").ne(Expr::col("tp", "CT")),
            Expr::col("tp", "CT").eq(Expr::str("_")),
        ]);
        assert_eq!(e.to_string(), "t.CT <> tp.CT OR tp.CT = '_'");
    }

    #[test]
    fn and_or_flatten_nested_operands() {
        let e = Expr::and(vec![
            Expr::and(vec![Expr::lit(1), Expr::lit(2)]),
            Expr::lit(3),
        ]);
        match e {
            Expr::And(ops) => assert_eq!(ops.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        let single = Expr::or(vec![Expr::lit(1)]);
        assert_eq!(single, Expr::lit(1));
    }

    #[test]
    fn parenthesization_of_mixed_and_or() {
        let e = Expr::and(vec![
            Expr::col("t", "A").eq(Expr::str("a")),
            Expr::or(vec![
                Expr::col("t", "B").eq(Expr::str("b")),
                Expr::col("t", "C").eq(Expr::str("c")),
            ]),
        ]);
        assert_eq!(e.to_string(), "t.A = 'a' AND (t.B = 'b' OR t.C = 'c')");
    }

    #[test]
    fn case_display_matches_sql() {
        let e = Expr::case(
            Expr::col("tp", "CC"),
            vec![(Expr::str("@"), Expr::str("@"))],
            Expr::col("t", "CC"),
        );
        assert_eq!(e.to_string(), "CASE tp.CC WHEN '@' THEN '@' ELSE t.CC END");
    }

    #[test]
    fn independence_and_column_collection() {
        let e = Expr::col("t", "A").eq(Expr::col("tp", "A"));
        assert!(!e.is_independent_of("t"));
        assert!(!e.is_independent_of("tp"));
        assert!(e.is_independent_of("other"));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(
            cols,
            vec![("t".into(), "A".into()), ("tp".into(), "A".into())]
        );
    }

    #[test]
    fn atom_count_ignores_connectives() {
        let e = Expr::and(vec![
            Expr::col("t", "A").eq(Expr::str("a")),
            Expr::or(vec![
                Expr::col("t", "B").eq(Expr::str("b")),
                Expr::col("t", "C").eq(Expr::str("c")),
            ]),
        ]);
        assert_eq!(e.atom_count(), 3);
    }

    #[test]
    fn query_display_full_shape() {
        let q = SelectQuery::new()
            .distinct()
            .item(SelectItem::expr(Expr::col("t", "CC")))
            .item(SelectItem::aliased(Expr::col("t", "AC"), "AC"))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("T2", "tp"))
            .filter(Expr::col("t", "CC").eq(Expr::col("tp", "CC")))
            .group(Expr::col("t", "CC"))
            .having_count_distinct_gt(vec![Expr::col("t", "CT")], 1);
        let sql = q.to_string();
        assert!(sql.starts_with("SELECT DISTINCT t.CC, t.AC AS AC FROM cust t, T2 tp"));
        assert!(sql.contains("WHERE t.CC = tp.CC"));
        assert!(sql.contains("GROUP BY t.CC"));
        assert!(sql.contains("HAVING count(distinct t.CT) > 1"));
    }

    #[test]
    fn wildcard_item_display() {
        assert_eq!(SelectItem::wildcard("t").to_string(), "t.*");
    }

    #[test]
    fn empty_connectives_render_as_constants() {
        assert_eq!(Expr::And(vec![]).to_string(), "TRUE");
        assert_eq!(Expr::Or(vec![]).to_string(), "FALSE");
    }

    #[test]
    fn table_ref_display() {
        assert_eq!(TableRef::named("cust").to_string(), "cust");
        assert_eq!(TableRef::aliased("cust", "t").to_string(), "cust t");
    }
}
