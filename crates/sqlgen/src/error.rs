//! Error types for the SQL substrate.

use cfd_relation::RelationError;
use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Errors raised while binding or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// A table alias or relation name in the query could not be resolved.
    UnknownTable(String),
    /// A column reference could not be resolved against the FROM clause.
    UnknownColumn {
        /// Table alias the column was qualified with.
        table: String,
        /// The column name.
        column: String,
    },
    /// Two relations with the same alias appear in the FROM clause.
    DuplicateAlias(String),
    /// The query shape is not supported by this mini executor.
    Unsupported(String),
    /// An error bubbled up from the relational substrate.
    Relation(RelationError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::UnknownTable(t) => write!(f, "unknown table or alias `{t}`"),
            SqlError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{table}.{column}`")
            }
            SqlError::DuplicateAlias(a) => write!(f, "duplicate table alias `{a}`"),
            SqlError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            SqlError::Relation(e) => write!(f, "relation error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<RelationError> for SqlError {
    fn from(e: RelationError) -> Self {
        SqlError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SqlError::UnknownTable("T2".into())
            .to_string()
            .contains("T2"));
        assert!(SqlError::UnknownColumn {
            table: "t".into(),
            column: "ZIP".into()
        }
        .to_string()
        .contains("t.ZIP"));
        assert!(SqlError::DuplicateAlias("t".into())
            .to_string()
            .contains("duplicate"));
        assert!(SqlError::Unsupported("no joins".into())
            .to_string()
            .contains("no joins"));
    }

    #[test]
    fn relation_error_converts() {
        let e: SqlError = RelationError::Parse("bad".into()).into();
        assert!(matches!(e, SqlError::Relation(_)));
        assert!(e.to_string().contains("bad"));
    }
}
