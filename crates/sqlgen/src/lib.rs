//! In-memory SQL substrate for CFD violation detection.
//!
//! The paper detects CFD violations with a pair of SQL queries (`QC`, `QV`)
//! evaluated by a commercial DBMS (DB2 in the original evaluation). This
//! reproduction has no external database, so this crate implements the slice
//! of SQL those queries need:
//!
//! * a typed [`ast`] for `SELECT`/`FROM`/`WHERE`/`GROUP BY`/`HAVING
//!   COUNT(DISTINCT …) > k` queries with `CASE` expressions,
//! * [`normal_form`] conversion of `WHERE` clauses to CNF or DNF — the
//!   evaluation-strategy knob studied in Figures 9(a)/9(b),
//! * an [`eval`]uator for scalar expressions over joined rows, and
//! * an [`exec`]utor that joins the data relation with (small) pattern
//!   tableaux, using hash-index probes for DNF disjuncts and full scans for
//!   CNF — mirroring why the paper found DNF markedly faster.
//!
//! ```
//! use cfd_relation::{Relation, Schema, Value};
//! use cfd_sql::ast::{Expr, SelectItem, SelectQuery, TableRef};
//! use cfd_sql::{Catalog, Executor};
//!
//! let schema = Schema::builder("r").text("A").text("B").build();
//! let mut rel = Relation::new(schema);
//! rel.push_values(vec!["1".into(), "x".into()]).unwrap();
//! rel.push_values(vec!["2".into(), "y".into()]).unwrap();
//!
//! let mut catalog = Catalog::new();
//! catalog.register(rel);
//!
//! let query = SelectQuery::new()
//!     .item(SelectItem::wildcard("t"))
//!     .from(TableRef::aliased("r", "t"))
//!     .filter(Expr::col("t", "A").eq(Expr::lit(Value::from("2"))));
//! let result = Executor::new(&catalog).run(&query).unwrap();
//! assert_eq!(result.rows().len(), 1);
//! ```

pub mod ast;
pub mod catalog;
pub mod compiled;
pub mod error;
pub mod eval;
pub mod exec;
pub mod normal_form;

pub use ast::{Expr, Having, SelectItem, SelectQuery, TableRef};
pub use catalog::Catalog;
pub use compiled::CompiledExpr;
pub use error::{Result, SqlError};
pub use exec::{ExecStats, Executor, PreparedQuery, ResultSet, Strategy};
pub use normal_form::{to_cnf, to_dnf, NormalForm};
