//! Scalar expression evaluation over joined rows.
//!
//! A [`Bindings`] value represents one row of the (partial) join computed by
//! the executor: for each FROM-clause alias it holds the schema and the
//! current tuple. Expressions are evaluated against those bindings.

use crate::ast::Expr;
use crate::error::{Result, SqlError};
use cfd_relation::{Schema, Tuple, Value};

/// The row context an expression is evaluated in: one bound tuple per alias.
#[derive(Debug, Clone)]
pub struct Bindings<'a> {
    entries: Vec<(&'a str, &'a Schema, &'a Tuple)>,
}

impl<'a> Bindings<'a> {
    /// An empty context.
    pub fn new() -> Self {
        Bindings {
            entries: Vec::new(),
        }
    }

    /// Adds (or replaces) the binding for `alias`.
    pub fn bind(&mut self, alias: &'a str, schema: &'a Schema, tuple: &'a Tuple) {
        if let Some(slot) = self.entries.iter_mut().find(|(a, _, _)| *a == alias) {
            *slot = (alias, schema, tuple);
        } else {
            self.entries.push((alias, schema, tuple));
        }
    }

    /// Removes the binding for `alias`, if any.
    pub fn unbind(&mut self, alias: &str) {
        self.entries.retain(|(a, _, _)| *a != alias);
    }

    /// Whether `alias` is currently bound.
    pub fn is_bound(&self, alias: &str) -> bool {
        self.entries.iter().any(|(a, _, _)| *a == alias)
    }

    /// The tuple bound to `alias`.
    pub fn tuple(&self, alias: &str) -> Option<&'a Tuple> {
        self.entries
            .iter()
            .find(|(a, _, _)| *a == alias)
            .map(|(_, _, t)| *t)
    }

    /// The schema bound to `alias`.
    pub fn schema(&self, alias: &str) -> Option<&'a Schema> {
        self.entries
            .iter()
            .find(|(a, _, _)| *a == alias)
            .map(|(_, s, _)| *s)
    }

    /// Resolves `alias.column` to the bound value.
    pub fn value(&self, alias: &str, column: &str) -> Result<&'a Value> {
        let (_, schema, tuple) = self
            .entries
            .iter()
            .find(|(a, _, _)| *a == alias)
            .ok_or_else(|| SqlError::UnknownTable(alias.to_owned()))?;
        let id = schema
            .resolve(column)
            .map_err(|_| SqlError::UnknownColumn {
                table: alias.to_owned(),
                column: column.to_owned(),
            })?;
        Ok(&tuple[id])
    }
}

impl Default for Bindings<'_> {
    fn default() -> Self {
        Bindings::new()
    }
}

/// Evaluates `expr` to a value under `bindings`.
pub fn eval_expr(expr: &Expr, bindings: &Bindings<'_>) -> Result<Value> {
    match expr {
        Expr::Column { table, column } => Ok(bindings.value(table, column)?.clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Eq(a, b) => Ok(Value::Bool(
            eval_expr(a, bindings)? == eval_expr(b, bindings)?,
        )),
        Expr::Ne(a, b) => Ok(Value::Bool(
            eval_expr(a, bindings)? != eval_expr(b, bindings)?,
        )),
        Expr::And(ops) => {
            for op in ops {
                if !eval_predicate(op, bindings)? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        Expr::Or(ops) => {
            for op in ops {
                if eval_predicate(op, bindings)? {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        Expr::Not(e) => Ok(Value::Bool(!eval_predicate(e, bindings)?)),
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            let op_val = eval_expr(operand, bindings)?;
            for (m, r) in arms {
                if eval_expr(m, bindings)? == op_val {
                    return eval_expr(r, bindings);
                }
            }
            eval_expr(otherwise, bindings)
        }
    }
}

/// Evaluates `expr` as a predicate: the result must be a boolean; every other
/// value type is an [`SqlError::Unsupported`] (it would indicate a malformed
/// generated query, which we prefer to surface loudly).
pub fn eval_predicate(expr: &Expr, bindings: &Bindings<'_>) -> Result<bool> {
    match eval_expr(expr, bindings)? {
        Value::Bool(b) => Ok(b),
        other => Err(SqlError::Unsupported(format!(
            "predicate evaluated to non-boolean value `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::Schema;

    fn schema() -> Schema {
        Schema::builder("r").text("A").text("B").build()
    }

    fn tuple(a: &str, b: &str) -> Tuple {
        Tuple::new(vec![Value::from(a), Value::from(b)])
    }

    #[test]
    fn column_resolution() {
        let s = schema();
        let t = tuple("x", "y");
        let mut b = Bindings::new();
        b.bind("t", &s, &t);
        assert_eq!(
            eval_expr(&Expr::col("t", "B"), &b).unwrap(),
            Value::from("y")
        );
        assert!(matches!(
            eval_expr(&Expr::col("t", "Z"), &b),
            Err(SqlError::UnknownColumn { .. })
        ));
        assert!(matches!(
            eval_expr(&Expr::col("u", "A"), &b),
            Err(SqlError::UnknownTable(_))
        ));
    }

    #[test]
    fn comparisons_and_connectives() {
        let s = schema();
        let t = tuple("x", "y");
        let mut b = Bindings::new();
        b.bind("t", &s, &t);
        let p = Expr::and(vec![
            Expr::col("t", "A").eq(Expr::str("x")),
            Expr::col("t", "B").ne(Expr::str("z")),
        ]);
        assert!(eval_predicate(&p, &b).unwrap());
        let q = Expr::or(vec![
            Expr::col("t", "A").eq(Expr::str("nope")),
            Expr::col("t", "B").eq(Expr::str("y")),
        ]);
        assert!(eval_predicate(&q, &b).unwrap());
        assert!(!eval_predicate(&q.clone().not(), &b).unwrap());
    }

    #[test]
    fn short_circuit_does_not_touch_unbound_tables() {
        // OR short-circuits before reaching the column of an unbound alias.
        let s = schema();
        let t = tuple("x", "y");
        let mut b = Bindings::new();
        b.bind("t", &s, &t);
        let p = Expr::or(vec![
            Expr::col("t", "A").eq(Expr::str("x")),
            Expr::col("missing", "A").eq(Expr::str("x")),
        ]);
        assert!(eval_predicate(&p, &b).unwrap());
    }

    #[test]
    fn case_expression_masks_values() {
        let s = schema();
        let t = tuple("NYC", "y");
        let tp_schema = Schema::builder("tp").text("A").text("B").build();
        let tp = tuple("@", "_");
        let mut b = Bindings::new();
        b.bind("t", &s, &t);
        b.bind("tp", &tp_schema, &tp);
        // CASE tp.A WHEN '@' THEN '@' ELSE t.A END  ->  '@'
        let mask_a = Expr::case(
            Expr::col("tp", "A"),
            vec![(Expr::str("@"), Expr::str("@"))],
            Expr::col("t", "A"),
        );
        assert_eq!(eval_expr(&mask_a, &b).unwrap(), Value::from("@"));
        // CASE tp.B WHEN '@' THEN '@' ELSE t.B END  ->  t.B
        let mask_b = Expr::case(
            Expr::col("tp", "B"),
            vec![(Expr::str("@"), Expr::str("@"))],
            Expr::col("t", "B"),
        );
        assert_eq!(eval_expr(&mask_b, &b).unwrap(), Value::from("y"));
    }

    #[test]
    fn predicates_must_be_boolean() {
        let b = Bindings::new();
        assert!(matches!(
            eval_predicate(&Expr::str("not-a-bool"), &b),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn bindings_rebind_and_unbind() {
        let s = schema();
        let t1 = tuple("1", "a");
        let t2 = tuple("2", "b");
        let mut b = Bindings::new();
        b.bind("t", &s, &t1);
        assert_eq!(b.value("t", "A").unwrap(), &Value::from("1"));
        b.bind("t", &s, &t2);
        assert_eq!(b.value("t", "A").unwrap(), &Value::from("2"));
        assert!(b.is_bound("t"));
        b.unbind("t");
        assert!(!b.is_bound("t"));
        assert!(b.value("t", "A").is_err());
    }

    #[test]
    fn schema_and_tuple_accessors() {
        let s = schema();
        let t = tuple("1", "a");
        let mut b = Bindings::new();
        b.bind("t", &s, &t);
        assert_eq!(b.schema("t").unwrap().name(), "r");
        assert_eq!(b.tuple("t").unwrap(), &t);
        assert!(b.schema("nope").is_none());
    }
}
