//! Scalar expression evaluation over joined rows.
//!
//! A [`Bindings`] value represents one row of the (partial) join computed by
//! the executor: for each FROM-clause alias it holds the schema and a
//! copy-free [`RowRef`] view into the bound relation's columns. Expressions
//! are evaluated against those bindings — reading a column is one array
//! index into the owning column, and nothing is materialized per row. This
//! is the symbolic reference evaluator; the executor's hot path runs the
//! [compiled](crate::compiled::CompiledExpr) form over the same row views.

use crate::ast::Expr;
use crate::error::{Result, SqlError};
use cfd_relation::{RowRef, Schema, Value};

/// The row context an expression is evaluated in: one bound row view per
/// alias.
#[derive(Debug, Clone)]
pub struct Bindings<'a> {
    entries: Vec<(&'a str, &'a Schema, RowRef<'a>)>,
}

impl<'a> Bindings<'a> {
    /// An empty context.
    pub fn new() -> Self {
        Bindings {
            entries: Vec::new(),
        }
    }

    /// Adds (or replaces) the binding for `alias`.
    pub fn bind(&mut self, alias: &'a str, schema: &'a Schema, row: RowRef<'a>) {
        if let Some(slot) = self.entries.iter_mut().find(|(a, _, _)| *a == alias) {
            *slot = (alias, schema, row);
        } else {
            self.entries.push((alias, schema, row));
        }
    }

    /// Removes the binding for `alias`, if any.
    pub fn unbind(&mut self, alias: &str) {
        self.entries.retain(|(a, _, _)| *a != alias);
    }

    /// Whether `alias` is currently bound.
    pub fn is_bound(&self, alias: &str) -> bool {
        self.entries.iter().any(|(a, _, _)| *a == alias)
    }

    /// The row view bound to `alias`.
    pub fn row(&self, alias: &str) -> Option<RowRef<'a>> {
        self.entries
            .iter()
            .find(|(a, _, _)| *a == alias)
            .map(|(_, _, t)| *t)
    }

    /// The schema bound to `alias`.
    pub fn schema(&self, alias: &str) -> Option<&'a Schema> {
        self.entries
            .iter()
            .find(|(a, _, _)| *a == alias)
            .map(|(_, s, _)| *s)
    }

    /// Resolves `alias.column` to the bound value.
    pub fn value(&self, alias: &str, column: &str) -> Result<&'a Value> {
        let (_, schema, row) = self
            .entries
            .iter()
            .find(|(a, _, _)| *a == alias)
            .ok_or_else(|| SqlError::UnknownTable(alias.to_owned()))?;
        let id = schema
            .resolve(column)
            .map_err(|_| SqlError::UnknownColumn {
                table: alias.to_owned(),
                column: column.to_owned(),
            })?;
        // The schema resolved the column, so a missing cell can only mean the
        // binding paired a row with the wrong schema — a caller bug, not an
        // unknown column; surface it loudly (as the pre-columnar index did).
        Ok(row
            .get(id)
            // wslint: allow(panic_path, "schema resolved the column; a miss is a caller bug the comment above insists must be loud")
            .expect("bound row matches the schema it was bound with"))
    }
}

impl Default for Bindings<'_> {
    fn default() -> Self {
        Bindings::new()
    }
}

/// Evaluates `expr` to a value under `bindings`.
pub fn eval_expr(expr: &Expr, bindings: &Bindings<'_>) -> Result<Value> {
    match expr {
        Expr::Column { table, column } => Ok(bindings.value(table, column)?.clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Eq(a, b) => Ok(Value::Bool(
            eval_expr(a, bindings)? == eval_expr(b, bindings)?,
        )),
        Expr::Ne(a, b) => Ok(Value::Bool(
            eval_expr(a, bindings)? != eval_expr(b, bindings)?,
        )),
        Expr::And(ops) => {
            for op in ops {
                if !eval_predicate(op, bindings)? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        Expr::Or(ops) => {
            for op in ops {
                if eval_predicate(op, bindings)? {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        Expr::Not(e) => Ok(Value::Bool(!eval_predicate(e, bindings)?)),
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            let op_val = eval_expr(operand, bindings)?;
            for (m, r) in arms {
                if eval_expr(m, bindings)? == op_val {
                    return eval_expr(r, bindings);
                }
            }
            eval_expr(otherwise, bindings)
        }
    }
}

/// Evaluates `expr` as a predicate: the result must be a boolean; every other
/// value type is an [`SqlError::Unsupported`] (it would indicate a malformed
/// generated query, which we prefer to surface loudly).
pub fn eval_predicate(expr: &Expr, bindings: &Bindings<'_>) -> Result<bool> {
    match eval_expr(expr, bindings)? {
        Value::Bool(b) => Ok(b),
        other => Err(SqlError::Unsupported(format!(
            "predicate evaluated to non-boolean value `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::{Relation, Schema, Tuple};

    fn schema() -> Schema {
        Schema::builder("r").text("A").text("B").build()
    }

    fn rel(a: &str, b: &str) -> Relation {
        let mut rel = Relation::new(schema());
        rel.push(Tuple::new(vec![Value::from(a), Value::from(b)]))
            .unwrap();
        rel
    }

    #[test]
    fn column_resolution() {
        let r = rel("x", "y");
        let mut b = Bindings::new();
        b.bind("t", r.schema(), r.row(0).unwrap());
        assert_eq!(
            eval_expr(&Expr::col("t", "B"), &b).unwrap(),
            Value::from("y")
        );
        assert!(matches!(
            eval_expr(&Expr::col("t", "Z"), &b),
            Err(SqlError::UnknownColumn { .. })
        ));
        assert!(matches!(
            eval_expr(&Expr::col("u", "A"), &b),
            Err(SqlError::UnknownTable(_))
        ));
    }

    #[test]
    fn comparisons_and_connectives() {
        let r = rel("x", "y");
        let mut b = Bindings::new();
        b.bind("t", r.schema(), r.row(0).unwrap());
        let p = Expr::and(vec![
            Expr::col("t", "A").eq(Expr::str("x")),
            Expr::col("t", "B").ne(Expr::str("z")),
        ]);
        assert!(eval_predicate(&p, &b).unwrap());
        let q = Expr::or(vec![
            Expr::col("t", "A").eq(Expr::str("nope")),
            Expr::col("t", "B").eq(Expr::str("y")),
        ]);
        assert!(eval_predicate(&q, &b).unwrap());
        assert!(!eval_predicate(&q.not(), &b).unwrap());
    }

    #[test]
    fn short_circuit_does_not_touch_unbound_tables() {
        // OR short-circuits before reaching the column of an unbound alias.
        let r = rel("x", "y");
        let mut b = Bindings::new();
        b.bind("t", r.schema(), r.row(0).unwrap());
        let p = Expr::or(vec![
            Expr::col("t", "A").eq(Expr::str("x")),
            Expr::col("missing", "A").eq(Expr::str("x")),
        ]);
        assert!(eval_predicate(&p, &b).unwrap());
    }

    #[test]
    fn case_expression_masks_values() {
        let r = rel("NYC", "y");
        let tp_schema = Schema::builder("tp").text("A").text("B").build();
        let mut tp_rel = Relation::new(tp_schema);
        tp_rel
            .push(Tuple::new(vec![Value::from("@"), Value::from("_")]))
            .unwrap();
        let mut b = Bindings::new();
        b.bind("t", r.schema(), r.row(0).unwrap());
        b.bind("tp", tp_rel.schema(), tp_rel.row(0).unwrap());
        // CASE tp.A WHEN '@' THEN '@' ELSE t.A END  ->  '@'
        let mask_a = Expr::case(
            Expr::col("tp", "A"),
            vec![(Expr::str("@"), Expr::str("@"))],
            Expr::col("t", "A"),
        );
        assert_eq!(eval_expr(&mask_a, &b).unwrap(), Value::from("@"));
        // CASE tp.B WHEN '@' THEN '@' ELSE t.B END  ->  t.B
        let mask_b = Expr::case(
            Expr::col("tp", "B"),
            vec![(Expr::str("@"), Expr::str("@"))],
            Expr::col("t", "B"),
        );
        assert_eq!(eval_expr(&mask_b, &b).unwrap(), Value::from("y"));
    }

    #[test]
    fn predicates_must_be_boolean() {
        let b = Bindings::new();
        assert!(matches!(
            eval_predicate(&Expr::str("not-a-bool"), &b),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn bindings_rebind_and_unbind() {
        let r1 = rel("1", "a");
        let r2 = rel("2", "b");
        let mut b = Bindings::new();
        b.bind("t", r1.schema(), r1.row(0).unwrap());
        assert_eq!(b.value("t", "A").unwrap(), &Value::from("1"));
        b.bind("t", r2.schema(), r2.row(0).unwrap());
        assert_eq!(b.value("t", "A").unwrap(), &Value::from("2"));
        assert!(b.is_bound("t"));
        b.unbind("t");
        assert!(!b.is_bound("t"));
        assert!(b.value("t", "A").is_err());
    }

    #[test]
    fn schema_and_row_accessors() {
        let r = rel("1", "a");
        let mut b = Bindings::new();
        b.bind("t", r.schema(), r.row(0).unwrap());
        assert_eq!(b.schema("t").unwrap().name(), "r");
        assert_eq!(
            b.row("t").unwrap(),
            Tuple::new(vec![Value::from("1"), Value::from("a")])
        );
        assert!(b.schema("nope").is_none());
        assert!(b.row("nope").is_none());
    }
}
