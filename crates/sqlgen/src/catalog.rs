//! The catalog: a set of named relation instances visible to queries.

use crate::error::{Result, SqlError};
use cfd_relation::Relation;
use std::collections::HashMap;
use std::sync::Arc;

/// A collection of named relations. Relations are stored behind [`Arc`] so
/// catalogs are cheap to clone and can be shared with worker threads by the
/// parallel detector.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: HashMap<String, Arc<Relation>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation under its schema name, replacing any previous
    /// relation with that name. Returns the name used.
    pub fn register(&mut self, relation: Relation) -> String {
        let name = relation.schema().name().to_owned();
        self.relations.insert(name.clone(), Arc::new(relation));
        name
    }

    /// Registers a relation under an explicit name.
    pub fn register_as(&mut self, name: impl Into<String>, relation: Relation) -> String {
        let name = name.into();
        self.relations.insert(name.clone(), Arc::new(relation));
        name
    }

    /// Registers an already-shared relation under an explicit name.
    pub fn register_arc(&mut self, name: impl Into<String>, relation: Arc<Relation>) -> String {
        let name = name.into();
        self.relations.insert(name.clone(), relation);
        name
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Arc<Relation>> {
        self.relations
            .get(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_owned()))
    }

    /// Removes a relation by name, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Relation>> {
        self.relations.remove(name)
    }

    /// Names of all registered relations (unsorted).
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.relations.keys().map(String::as_str)
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::Schema;

    fn rel(name: &str) -> Relation {
        Relation::new(Schema::builder(name).text("A").build())
    }

    #[test]
    fn register_and_lookup_by_schema_name() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let name = c.register(rel("cust"));
        assert_eq!(name, "cust");
        assert_eq!(c.get("cust").unwrap().schema().name(), "cust");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn register_as_overrides_name() {
        let mut c = Catalog::new();
        c.register_as("T2", rel("tableau"));
        assert!(c.get("T2").is_ok());
        assert!(c.get("tableau").is_err());
    }

    #[test]
    fn unknown_table_is_an_error() {
        let c = Catalog::new();
        assert_eq!(
            c.get("nope").unwrap_err(),
            SqlError::UnknownTable("nope".into())
        );
    }

    #[test]
    fn re_registering_replaces() {
        let mut c = Catalog::new();
        c.register_as("r", rel("first"));
        c.register_as("r", rel("second"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("r").unwrap().schema().name(), "second");
    }

    #[test]
    fn remove_returns_relation() {
        let mut c = Catalog::new();
        c.register(rel("r"));
        assert!(c.remove("r").is_some());
        assert!(c.remove("r").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn names_lists_registered() {
        let mut c = Catalog::new();
        c.register(rel("a"));
        c.register(rel("b"));
        let mut names: Vec<&str> = c.names().collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }
}
