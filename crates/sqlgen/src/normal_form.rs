//! CNF / DNF rewriting of WHERE clauses.
//!
//! The paper's detection queries come out of the generator in conjunctive
//! normal form: a conjunction of per-attribute disjunctions such as
//! `(t.CC = tp.CC OR tp.CC = '_')`. Section 5 observes that DBMS optimizers
//! handle CNF poorly (the ORs block index selection) and that converting to
//! disjunctive normal form — at the cost of a blow-up that is exponential in
//! the *number of CFD attributes*, not the data — makes detection much
//! faster. This module implements both conversions so the executor (and the
//! Figure 9(a)/9(b) benchmarks) can compare the two strategies.

use crate::ast::Expr;

/// Which normal form a WHERE clause should be evaluated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NormalForm {
    /// Leave the predicate exactly as generated (CNF for our generators).
    #[default]
    AsWritten,
    /// Conjunctive normal form: AND of ORs of atoms.
    Cnf,
    /// Disjunctive normal form: OR of ANDs of atoms.
    Dnf,
}

/// Rewrites `expr` into conjunctive normal form.
///
/// Atoms (comparisons, literals, CASE expressions) are treated as opaque.
/// Negation is pushed down over AND/OR (De Morgan) and double negations are
/// removed; `NOT atom` stays an atom.
pub fn to_cnf(expr: &Expr) -> Expr {
    let nnf = to_nnf(expr, false);
    cnf_of_nnf(&nnf)
}

/// Rewrites `expr` into disjunctive normal form. See [`to_cnf`] for atom
/// handling.
pub fn to_dnf(expr: &Expr) -> Expr {
    let nnf = to_nnf(expr, false);
    dnf_of_nnf(&nnf)
}

/// Number of top-level conjuncts when viewed as CNF (1 for a bare atom/OR).
pub fn cnf_clause_count(expr: &Expr) -> usize {
    match expr {
        Expr::And(ops) => ops.len(),
        _ => 1,
    }
}

/// Number of top-level disjuncts when viewed as DNF (1 for a bare atom/AND).
pub fn dnf_clause_count(expr: &Expr) -> usize {
    match expr {
        Expr::Or(ops) => ops.len(),
        _ => 1,
    }
}

/// Pushes negations down to atoms (negation normal form).
fn to_nnf(expr: &Expr, negate: bool) -> Expr {
    match expr {
        Expr::Not(inner) => to_nnf(inner, !negate),
        Expr::And(ops) => {
            let children: Vec<Expr> = ops.iter().map(|e| to_nnf(e, negate)).collect();
            if negate {
                Expr::or(children)
            } else {
                Expr::and(children)
            }
        }
        Expr::Or(ops) => {
            let children: Vec<Expr> = ops.iter().map(|e| to_nnf(e, negate)).collect();
            if negate {
                Expr::and(children)
            } else {
                Expr::or(children)
            }
        }
        // Negated equality/inequality atoms flip into their dual; other atoms
        // keep an explicit NOT.
        Expr::Eq(a, b) if negate => Expr::Ne(a.clone(), b.clone()),
        Expr::Ne(a, b) if negate => Expr::Eq(a.clone(), b.clone()),
        atom => {
            if negate {
                Expr::Not(Box::new(atom.clone()))
            } else {
                atom.clone()
            }
        }
    }
}

/// CNF of an expression already in negation normal form.
fn cnf_of_nnf(expr: &Expr) -> Expr {
    match expr {
        Expr::And(ops) => {
            let mut clauses: Vec<Expr> = Vec::new();
            for op in ops {
                match cnf_of_nnf(op) {
                    Expr::And(inner) => clauses.extend(inner),
                    other => clauses.push(other),
                }
            }
            Expr::and(clauses)
        }
        Expr::Or(ops) => {
            // OR over children each in CNF: distribute.
            let children: Vec<Vec<Expr>> = ops
                .iter()
                .map(|op| match cnf_of_nnf(op) {
                    Expr::And(inner) => inner,
                    other => vec![other],
                })
                .collect();
            // Cross product of clause choices.
            let mut result: Vec<Vec<Expr>> = vec![Vec::new()];
            for clauses in children {
                let mut next = Vec::with_capacity(result.len() * clauses.len());
                for partial in &result {
                    for clause in &clauses {
                        let mut combined = partial.clone();
                        combined.push(clause.clone());
                        next.push(combined);
                    }
                }
                result = next;
            }
            let clauses: Vec<Expr> = result.into_iter().map(Expr::or).collect();
            Expr::and(clauses)
        }
        atom => atom.clone(),
    }
}

/// DNF of an expression already in negation normal form.
fn dnf_of_nnf(expr: &Expr) -> Expr {
    match expr {
        Expr::Or(ops) => {
            let mut terms: Vec<Expr> = Vec::new();
            for op in ops {
                match dnf_of_nnf(op) {
                    Expr::Or(inner) => terms.extend(inner),
                    other => terms.push(other),
                }
            }
            Expr::or(terms)
        }
        Expr::And(ops) => {
            let children: Vec<Vec<Expr>> = ops
                .iter()
                .map(|op| match dnf_of_nnf(op) {
                    Expr::Or(inner) => inner,
                    other => vec![other],
                })
                .collect();
            let mut result: Vec<Vec<Expr>> = vec![Vec::new()];
            for terms in children {
                let mut next = Vec::with_capacity(result.len() * terms.len());
                for partial in &result {
                    for term in &terms {
                        let mut combined = partial.clone();
                        combined.push(term.clone());
                        next.push(combined);
                    }
                }
                result = next;
            }
            let terms: Vec<Expr> = result.into_iter().map(Expr::and).collect();
            Expr::or(terms)
        }
        atom => atom.clone(),
    }
}

/// Applies the requested normal form to an optional WHERE clause.
pub fn apply(form: NormalForm, where_clause: Option<&Expr>) -> Option<Expr> {
    where_clause.map(|e| match form {
        NormalForm::AsWritten => e.clone(),
        NormalForm::Cnf => to_cnf(e),
        NormalForm::Dnf => to_dnf(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str) -> Expr {
        Expr::col("t", name).eq(Expr::str(name.to_lowercase()))
    }

    /// Evaluates a boolean expression under an assignment of atoms to truth
    /// values; used to check that rewrites preserve semantics.
    fn eval(expr: &Expr, truth: &dyn Fn(&Expr) -> bool) -> bool {
        match expr {
            Expr::And(ops) => ops.iter().all(|e| eval(e, truth)),
            Expr::Or(ops) => ops.iter().any(|e| eval(e, truth)),
            Expr::Not(e) => !eval(e, truth),
            other => truth(other),
        }
    }

    #[test]
    fn dnf_of_cnf_distributes() {
        // (a OR b) AND (c OR d) -> 4 disjuncts.
        let e = Expr::and(vec![
            Expr::or(vec![atom("A"), atom("B")]),
            Expr::or(vec![atom("C"), atom("D")]),
        ]);
        let dnf = to_dnf(&e);
        assert_eq!(dnf_clause_count(&dnf), 4);
        // Every disjunct is a conjunction of atoms.
        if let Expr::Or(terms) = &dnf {
            for t in terms {
                assert!(matches!(t, Expr::And(_)));
            }
        } else {
            panic!("expected OR at top of DNF");
        }
    }

    #[test]
    fn cnf_of_dnf_distributes() {
        let e = Expr::or(vec![
            Expr::and(vec![atom("A"), atom("B")]),
            Expr::and(vec![atom("C"), atom("D")]),
        ]);
        let cnf = to_cnf(&e);
        assert_eq!(cnf_clause_count(&cnf), 4);
    }

    #[test]
    fn already_normal_forms_are_stable() {
        let cnf_shape = Expr::and(vec![Expr::or(vec![atom("A"), atom("B")]), atom("C")]);
        assert_eq!(to_cnf(&cnf_shape), cnf_shape);
        let dnf_shape = Expr::or(vec![Expr::and(vec![atom("A"), atom("B")]), atom("C")]);
        assert_eq!(to_dnf(&dnf_shape), dnf_shape);
    }

    #[test]
    fn negation_is_pushed_to_atoms() {
        let e = Expr::Not(Box::new(Expr::and(vec![atom("A"), atom("B")])));
        let dnf = to_dnf(&e);
        // NOT (A AND B) == (NOT A) OR (NOT B); our Eq atoms flip to Ne.
        match dnf {
            Expr::Or(ops) => {
                assert_eq!(ops.len(), 2);
                assert!(ops.iter().all(|o| matches!(o, Expr::Ne(_, _))));
            }
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn rewrites_preserve_truth_tables() {
        // Three atoms; enumerate all 8 assignments.
        let a = atom("A");
        let b = atom("B");
        let c = atom("C");
        let expr = Expr::and(vec![
            Expr::or(vec![a.clone(), b.clone()]),
            Expr::or(vec![b.clone(), c.clone()]),
            Expr::Not(Box::new(a.clone())),
        ]);
        let cnf = to_cnf(&expr);
        let dnf = to_dnf(&expr);
        for mask in 0..8u8 {
            let truth = |e: &Expr| -> bool {
                // Map each atom (or its Ne dual) to its assigned bit.
                let (base, negated) = match e {
                    Expr::Ne(x, y) => (Expr::Eq(x.clone(), y.clone()), true),
                    Expr::Not(inner) => ((**inner).clone(), true),
                    other => (other.clone(), false),
                };
                let bit = if base == a {
                    mask & 1 != 0
                } else if base == b {
                    mask & 2 != 0
                } else if base == c {
                    mask & 4 != 0
                } else {
                    panic!("unexpected atom {base:?}")
                };
                bit != negated
            };
            let expected = eval(&expr, &truth);
            assert_eq!(eval(&cnf, &truth), expected, "CNF differs at mask {mask}");
            assert_eq!(eval(&dnf, &truth), expected, "DNF differs at mask {mask}");
        }
    }

    #[test]
    fn blow_up_is_exponential_in_attributes_only() {
        // k per-attribute OR-clauses of 2 atoms each -> 2^k DNF disjuncts.
        let k = 6;
        let clauses: Vec<Expr> = (0..k)
            .map(|i| {
                Expr::or(vec![
                    Expr::col("t", format!("X{i}")).eq(Expr::col("tp", format!("X{i}"))),
                    Expr::col("tp", format!("X{i}")).eq(Expr::str("_")),
                ])
            })
            .collect();
        let cnf = Expr::and(clauses);
        let dnf = to_dnf(&cnf);
        assert_eq!(dnf_clause_count(&dnf), 1 << k);
    }

    #[test]
    fn apply_respects_requested_form() {
        let e = Expr::or(vec![Expr::and(vec![atom("A"), atom("B")]), atom("C")]);
        assert_eq!(apply(NormalForm::AsWritten, Some(&e)), Some(e.clone()));
        assert_eq!(apply(NormalForm::Dnf, Some(&e)), Some(to_dnf(&e)));
        assert_eq!(apply(NormalForm::Cnf, Some(&e)), Some(to_cnf(&e)));
        assert_eq!(apply(NormalForm::Cnf, None), None);
    }

    #[test]
    fn default_form_is_as_written() {
        assert_eq!(NormalForm::default(), NormalForm::AsWritten);
    }
}
