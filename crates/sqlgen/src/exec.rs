//! Query execution.
//!
//! The executor computes the join of the FROM-clause relations filtered by
//! the WHERE clause, then applies projection, DISTINCT, GROUP BY and HAVING.
//! Two evaluation strategies are supported, mirroring the CNF-vs-DNF study of
//! Section 5 of the paper:
//!
//! * **CNF / as-written, unindexed** — for every combination of rows of the
//!   small relations (the pattern tableaux), the large *probe* relation is
//!   scanned in full and the whole WHERE clause is evaluated per row. ORs in
//!   the clause make it impossible to derive an index probe, which is exactly
//!   the behaviour the paper attributes to the DBMS optimizer on CNF input.
//! * **DNF, indexed** — the WHERE clause is rewritten to DNF; for each
//!   disjunct the executor extracts `probe.column = <constant under the
//!   current outer bindings>` atoms, builds (and caches) a hash index on those
//!   columns, and only verifies the disjunct on the rows the index returns.
//!   Disjuncts whose tableau-only atoms are false are skipped without touching
//!   the data at all.
//!
//! Expressions are [compiled](crate::compiled::CompiledExpr) before the join
//! loops so the per-row work involves no name resolution and no cloning.
//! The choice of strategy is a [`Strategy`] value; [`ExecStats`] reports how
//! many rows were scanned and how many index probes were made, which the
//! ablation benchmarks use to explain the timing differences.

use crate::ast::{Expr, SelectItem, SelectQuery};
use crate::catalog::Catalog;
use crate::compiled::CompiledExpr;
use crate::error::{Result, SqlError};
use crate::normal_form::{self, NormalForm};
use cfd_relation::{AttrId, Index, Relation, RowRef, Value, ValueId};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// How the executor evaluates the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strategy {
    /// Normal form the WHERE clause is rewritten to before evaluation.
    pub form: NormalForm,
    /// Whether hash-index probes may be derived from DNF disjuncts.
    pub use_indexes: bool,
}

impl Strategy {
    /// CNF evaluation with full scans (the slow baseline of Fig. 9(a)/(b)).
    pub fn cnf() -> Self {
        Strategy {
            form: NormalForm::Cnf,
            use_indexes: false,
        }
    }

    /// DNF evaluation with hash-index probes (the fast strategy).
    pub fn dnf() -> Self {
        Strategy {
            form: NormalForm::Dnf,
            use_indexes: true,
        }
    }

    /// DNF evaluation without indexes; isolates the benefit of the rewrite
    /// itself from the benefit of index probes (used by the join ablation).
    pub fn dnf_unindexed() -> Self {
        Strategy {
            form: NormalForm::Dnf,
            use_indexes: false,
        }
    }

    /// Evaluate the WHERE clause exactly as written, scanning.
    pub fn as_written() -> Self {
        Strategy {
            form: NormalForm::AsWritten,
            use_indexes: false,
        }
    }
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::dnf()
    }
}

/// Counters describing how a query was executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Probe-relation rows examined (scanned or returned by index lookups).
    pub rows_examined: usize,
    /// Number of hash-index lookups performed.
    pub index_probes: usize,
    /// Joined rows that satisfied the WHERE clause.
    pub joined_rows: usize,
    /// Rows in the final result (after DISTINCT / HAVING).
    pub output_rows: usize,
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Output rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether some output row equals `row`.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.rows.iter().any(|r| r.as_slice() == row)
    }

    /// Position of the named output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The values of one output column.
    pub fn column_values(&self, name: &str) -> Option<Vec<Value>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }
}

/// Executes [`SelectQuery`] values against a [`Catalog`].
/// Cache of hash indexes built per (relation name, key attributes).
type IndexCache = Mutex<HashMap<(String, Vec<AttrId>), Arc<Index>>>;

pub struct Executor<'c> {
    catalog: &'c Catalog,
    strategy: Strategy,
    index_cache: IndexCache,
}

impl<'c> Executor<'c> {
    /// An executor with the default (DNF + indexes) strategy.
    pub fn new(catalog: &'c Catalog) -> Self {
        Executor {
            catalog,
            strategy: Strategy::default(),
            index_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the evaluation strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The current strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Runs a query, returning only its result.
    pub fn run(&self, query: &SelectQuery) -> Result<ResultSet> {
        self.run_with_stats(query).map(|(rs, _)| rs)
    }

    /// Runs a query, returning its result and execution counters.
    ///
    /// Equivalent to [`Executor::prepare`] followed by
    /// [`PreparedQuery::run_with_stats`], except that the derived hash
    /// indexes live in the *executor's* cache and are reused across `run`
    /// calls on the same `Executor`.
    pub fn run_with_stats(&self, query: &SelectQuery) -> Result<(ResultSet, ExecStats)> {
        self.prepare(query)?.execute(&self.index_cache)
    }

    /// Compiles a query against the catalog once, returning a reusable
    /// [`PreparedQuery`].
    ///
    /// Preparation performs every per-query cost of [`Executor::run`] that
    /// does not depend on the probe data itself: FROM-clause resolution
    /// (binding `Arc`s to the catalog's relations), SELECT/GROUP BY/HAVING
    /// expansion, the CNF/DNF rewrite of the WHERE clause, and compilation of
    /// every expression down to `(slot, AttrId)` column reads and interned
    /// literals. Repeated [`PreparedQuery::run`] calls skip all of it — the
    /// prepared-statement pattern a serving engine runs its fixed detection
    /// queries through.
    pub fn prepare(&self, query: &SelectQuery) -> Result<PreparedQuery> {
        if query.items.is_empty() {
            return Err(SqlError::Unsupported("empty SELECT list".into()));
        }
        if query.from.is_empty() {
            return Err(SqlError::Unsupported("empty FROM clause".into()));
        }
        if query.having.is_some() && query.group_by.is_empty() {
            return Err(SqlError::Unsupported("HAVING requires GROUP BY".into()));
        }

        // Resolve FROM-clause tables into slots.
        let mut tables: Vec<(String, Arc<Relation>)> = Vec::with_capacity(query.from.len());
        let mut seen_aliases: HashSet<&str> = HashSet::new();
        for t in &query.from {
            if !seen_aliases.insert(t.alias.as_str()) {
                return Err(SqlError::DuplicateAlias(t.alias.clone()));
            }
            tables.push((t.alias.clone(), Arc::clone(self.catalog.get(&t.name)?)));
        }

        // The probe table is the largest relation; all others are enumerated
        // by nested loops (they are the small pattern tableaux in practice).
        let probe_slot = tables
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, r))| r.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let outer_slots: Vec<usize> = (0..tables.len()).filter(|i| *i != probe_slot).collect();

        // Expand and compile the SELECT list, GROUP BY and HAVING.
        let (out_names, out_exprs) = expand_select_items(query, &tables)?;
        let out_compiled: Vec<CompiledExpr> = out_exprs
            .iter()
            .map(|e| CompiledExpr::compile(e, &tables))
            .collect::<Result<_>>()?;
        let group_compiled: Vec<CompiledExpr> = query
            .group_by
            .iter()
            .map(|e| CompiledExpr::compile(e, &tables))
            .collect::<Result<_>>()?;
        let having_compiled: Option<Vec<CompiledExpr>> = match &query.having {
            Some(h) => Some(
                h.count_distinct
                    .iter()
                    .map(|e| CompiledExpr::compile(e, &tables))
                    .collect::<Result<_>>()?,
            ),
            None => None,
        };

        // Rewrite and compile the WHERE clause.
        let where_sym = normal_form::apply(self.strategy.form, query.where_clause.as_ref());
        let where_compiled = match &where_sym {
            Some(e) => Some(CompiledExpr::compile(e, &tables)?),
            None => None,
        };

        Ok(PreparedQuery {
            query: query.clone(),
            strategy: self.strategy,
            tables,
            probe_slot,
            outer_slots,
            out_names,
            out_compiled,
            group_compiled,
            having_compiled,
            where_compiled,
            index_cache: Mutex::new(HashMap::new()),
        })
    }
}

/// A query compiled once against a fixed catalog snapshot and re-runnable
/// many times (see [`Executor::prepare`]).
///
/// The prepared form owns `Arc`s of the bound relations, so it outlives the
/// [`Catalog`] and the [`Executor`] it was prepared with, and it is
/// `Send + Sync` — one prepared query can serve concurrent readers. Each
/// `PreparedQuery` carries its **own** derived-index cache: the hash indexes
/// built for DNF probe predicates persist across [`PreparedQuery::run`]
/// calls instead of being rebuilt per execution.
#[derive(Debug)]
pub struct PreparedQuery {
    query: SelectQuery,
    strategy: Strategy,
    tables: Vec<(String, Arc<Relation>)>,
    probe_slot: usize,
    outer_slots: Vec<usize>,
    out_names: Vec<String>,
    out_compiled: Vec<CompiledExpr>,
    group_compiled: Vec<CompiledExpr>,
    having_compiled: Option<Vec<CompiledExpr>>,
    where_compiled: Option<CompiledExpr>,
    index_cache: IndexCache,
}

impl PreparedQuery {
    /// The strategy the query was prepared with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The query this plan was compiled from.
    pub fn query(&self) -> &SelectQuery {
        &self.query
    }

    /// Executes the prepared plan, returning only its result.
    pub fn run(&self) -> Result<ResultSet> {
        self.run_with_stats().map(|(rs, _)| rs)
    }

    /// Executes the prepared plan, returning its result and counters.
    /// Results are identical to [`Executor::run_with_stats`] on the same
    /// query and catalog contents.
    pub fn run_with_stats(&self) -> Result<(ResultSet, ExecStats)> {
        self.execute(&self.index_cache)
    }

    /// The shared execution core: the join/filter/accumulate loops, with the
    /// derived-index cache supplied by the caller (the executor's for
    /// one-shot runs, the plan's own for prepared runs).
    fn execute(&self, index_cache: &IndexCache) -> Result<(ResultSet, ExecStats)> {
        let query = &self.query;
        let mut stats = ExecStats::default();
        let mut acc = Accumulator::new(query);

        let probe_rel = Arc::clone(&self.tables[self.probe_slot].1);
        let outer_sizes: Vec<usize> = self
            .outer_slots
            .iter()
            .map(|&s| self.tables[s].1.len())
            .collect();
        // One copy-free row view per FROM slot; binding a row is two words.
        let mut rows: Vec<Option<RowRef<'_>>> = vec![None; self.tables.len()];

        if outer_sizes.contains(&0) {
            let out = acc.finish(query, &mut stats);
            return Ok((
                ResultSet {
                    columns: self.out_names.clone(),
                    rows: out,
                },
                stats,
            ));
        }

        let mut counters = vec![0usize; self.outer_slots.len()];
        loop {
            for (pos, &slot) in self.outer_slots.iter().enumerate() {
                rows[slot] = self.tables[slot].1.row(counters[pos]);
            }
            rows[self.probe_slot] = None;

            let candidates = probe_candidates(
                self.strategy,
                index_cache,
                self.probe_slot,
                &probe_rel,
                self.where_compiled.as_ref(),
                &mut rows,
                &mut stats,
            )?;

            for row_idx in candidates {
                rows[self.probe_slot] = probe_rel.row(row_idx);
                stats.joined_rows += 1;
                acc.add(
                    query,
                    &self.out_compiled,
                    &self.group_compiled,
                    self.having_compiled.as_deref(),
                    &rows,
                )?;
            }
            rows[self.probe_slot] = None;

            // Advance the outer counter; stop when it wraps around.
            if self.outer_slots.is_empty() {
                break;
            }
            let mut pos = 0;
            loop {
                counters[pos] += 1;
                if counters[pos] < outer_sizes[pos] {
                    break;
                }
                counters[pos] = 0;
                pos += 1;
                if pos == self.outer_slots.len() {
                    break;
                }
            }
            if pos == self.outer_slots.len() {
                break;
            }
        }

        let out = acc.finish(query, &mut stats);
        Ok((
            ResultSet {
                columns: self.out_names.clone(),
                rows: out,
            },
            stats,
        ))
    }
}

/// Determines which probe-relation rows can satisfy the WHERE clause
/// under the current outer bindings, returning their indices sorted.
#[allow(clippy::too_many_arguments)]
fn probe_candidates<'a>(
    strategy: Strategy,
    index_cache: &IndexCache,
    probe_slot: usize,
    probe_rel: &'a Relation,
    where_clause: Option<&CompiledExpr>,
    rows: &mut Vec<Option<RowRef<'a>>>,
    stats: &mut ExecStats,
) -> Result<Vec<usize>> {
    let Some(clause) = where_clause else {
        stats.rows_examined += probe_rel.len();
        return Ok((0..probe_rel.len()).collect());
    };

    if !strategy.use_indexes {
        // Full scan evaluating the whole clause.
        let mut matched = Vec::new();
        for (i, tuple) in probe_rel.iter() {
            stats.rows_examined += 1;
            rows[probe_slot] = Some(tuple);
            if clause.eval_bool(rows)? {
                matched.push(i);
            }
        }
        rows[probe_slot] = None;
        return Ok(matched);
    }

    // Indexed evaluation: treat the clause as a disjunction of conjuncts.
    let disjuncts: Vec<&CompiledExpr> = match clause {
        CompiledExpr::Or(ops) => ops.iter().collect(),
        other => vec![other],
    };

    let mut matched: HashSet<usize> = HashSet::new();
    for disjunct in disjuncts {
        let atoms: Vec<&CompiledExpr> = match disjunct {
            CompiledExpr::And(ops) => ops.iter().collect(),
            atom => vec![atom],
        };

        // Atoms not mentioning the probe table are decided right away;
        // a false one rules out the whole disjunct without touching data.
        let mut skip = false;
        for atom in atoms.iter().filter(|a| !a.references_slot(probe_slot)) {
            if !atom.eval_bool(rows)? {
                skip = true;
                break;
            }
        }
        if skip {
            continue;
        }

        // Equality atoms binding a probe column to a value computable
        // from the outer bindings become index-probe keys (interned, so
        // the probe hashes u32s and clones nothing).
        let mut probe_cols: Vec<(AttrId, ValueId)> = Vec::new();
        for atom in &atoms {
            if let Some((attr, value)) = constant_probe(atom, probe_slot, rows)? {
                probe_cols.push((attr, value));
            }
        }
        probe_cols.sort_by_key(|(a, _)| *a);
        probe_cols.dedup_by(|a, b| a.0 == b.0);

        let candidate_rows: Vec<usize> = if probe_cols.is_empty() {
            stats.rows_examined += probe_rel.len();
            (0..probe_rel.len()).collect()
        } else {
            let attrs: Vec<AttrId> = probe_cols.iter().map(|(a, _)| *a).collect();
            let key: Vec<ValueId> = probe_cols.into_iter().map(|(_, v)| v).collect();
            let index = index_for(index_cache, probe_rel, &attrs);
            stats.index_probes += 1;
            let found = index.lookup_ids(&key).to_vec();
            stats.rows_examined += found.len();
            found
        };

        for row_idx in candidate_rows {
            if matched.contains(&row_idx) {
                continue;
            }
            rows[probe_slot] = probe_rel.row(row_idx);
            if disjunct.eval_bool(rows)? {
                matched.insert(row_idx);
            }
        }
        rows[probe_slot] = None;
    }

    let mut result: Vec<usize> = matched.into_iter().collect();
    result.sort_unstable();
    Ok(result)
}

/// Returns (building and caching on first use) a hash index on `attrs`.
fn index_for(index_cache: &IndexCache, rel: &Relation, attrs: &[AttrId]) -> Arc<Index> {
    let key = (rel.schema().name().to_owned(), attrs.to_vec());
    // Poison recovery: the map only ever holds fully built indexes (an
    // entry is inserted after `build_index` returns), so the state behind
    // a poisoned lock is still valid — keep serving it.
    let mut cache = index_cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(
        cache
            .entry(key)
            .or_insert_with(|| Arc::new(rel.build_index(attrs))),
    )
}

/// If `atom` is an equality binding a probe-table column to an expression
/// evaluable without the probe table, returns the column id and its interned
/// value.
fn constant_probe(
    atom: &CompiledExpr,
    probe_slot: usize,
    rows: &[Option<RowRef<'_>>],
) -> Result<Option<(AttrId, ValueId)>> {
    let CompiledExpr::Eq(lhs, rhs) = atom else {
        return Ok(None);
    };
    let (attr, other) = match (lhs.as_ref(), rhs.as_ref()) {
        (CompiledExpr::Col { table, attr }, other)
            if *table == probe_slot && !other.references_slot(probe_slot) =>
        {
            (*attr, other)
        }
        (other, CompiledExpr::Col { table, attr })
            if *table == probe_slot && !other.references_slot(probe_slot) =>
        {
            (*attr, other)
        }
        _ => return Ok(None),
    };
    Ok(Some((attr, other.eval_id(rows)?)))
}

/// Expands the SELECT list into `(output names, output expressions)`.
fn expand_select_items(
    query: &SelectQuery,
    tables: &[(String, Arc<Relation>)],
) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut names = Vec::new();
    let mut exprs = Vec::new();
    for item in &query.items {
        match item {
            SelectItem::Wildcard { table } => {
                let (_, rel) = tables
                    .iter()
                    .find(|(alias, _)| alias == table)
                    .ok_or_else(|| SqlError::UnknownTable(table.clone()))?;
                for attr in rel.schema().attributes() {
                    names.push(attr.name.clone());
                    exprs.push(Expr::col(table.clone(), attr.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                exprs.push(expr.clone());
            }
        }
    }
    Ok((names, exprs))
}

/// Per-group state: the projection of the first row seen plus the distinct
/// HAVING keys observed so far.
type GroupState = (Vec<ValueId>, HashSet<Vec<ValueId>>);

/// Accumulates joined rows into either a plain (optionally DISTINCT) result
/// or grouped state for GROUP BY / HAVING.
///
/// All keys and projections are interned [`ValueId`]s while accumulating —
/// hashing and deduplication work on `u32`s — and are resolved to [`Value`]s
/// once, at [`Accumulator::finish`].
enum Accumulator {
    Plain {
        rows: Vec<Vec<ValueId>>,
        seen: Option<HashSet<Vec<ValueId>>>,
    },
    Grouped {
        /// group key -> (projection of the first row seen, distinct HAVING keys)
        groups: HashMap<Vec<ValueId>, GroupState>,
        /// insertion order of group keys, for deterministic output
        order: Vec<Vec<ValueId>>,
    },
}

impl Accumulator {
    fn new(query: &SelectQuery) -> Self {
        if query.group_by.is_empty() {
            Accumulator::Plain {
                rows: Vec::new(),
                seen: if query.distinct {
                    Some(HashSet::new())
                } else {
                    None
                },
            }
        } else {
            Accumulator::Grouped {
                groups: HashMap::new(),
                order: Vec::new(),
            }
        }
    }

    fn add(
        &mut self,
        _query: &SelectQuery,
        out_exprs: &[CompiledExpr],
        group_exprs: &[CompiledExpr],
        having_exprs: Option<&[CompiledExpr]>,
        rows: &[Option<RowRef<'_>>],
    ) -> Result<()> {
        match self {
            Accumulator::Plain { rows: out, seen } => {
                let row: Vec<ValueId> = out_exprs
                    .iter()
                    .map(|e| e.eval_id(rows))
                    .collect::<Result<_>>()?;
                match seen {
                    Some(set) => {
                        if set.insert(row.clone()) {
                            out.push(row);
                        }
                    }
                    None => out.push(row),
                }
            }
            Accumulator::Grouped { groups, order } => {
                let key: Vec<ValueId> = group_exprs
                    .iter()
                    .map(|e| e.eval_id(rows))
                    .collect::<Result<_>>()?;
                let entry = match groups.get_mut(&key) {
                    Some(e) => e,
                    None => {
                        let projection: Vec<ValueId> = out_exprs
                            .iter()
                            .map(|e| e.eval_id(rows))
                            .collect::<Result<_>>()?;
                        order.push(key.clone());
                        groups
                            .entry(key.clone())
                            .or_insert((projection, HashSet::new()))
                    }
                };
                if let Some(having) = having_exprs {
                    let distinct_key: Vec<ValueId> = having
                        .iter()
                        .map(|e| e.eval_id(rows))
                        .collect::<Result<_>>()?;
                    entry.1.insert(distinct_key);
                }
            }
        }
        Ok(())
    }

    fn finish(self, query: &SelectQuery, stats: &mut ExecStats) -> Vec<Vec<Value>> {
        let id_rows = match self {
            Accumulator::Plain { rows, .. } => rows,
            Accumulator::Grouped { mut groups, order } => {
                let mut out = Vec::new();
                for key in order {
                    let (projection, distinct) =
                        // wslint: allow(panic_path, "order and groups are inserted in lockstep; every ordered key has a group")
                        groups.remove(&key).expect("group recorded in order");
                    let passes = match &query.having {
                        Some(h) => distinct.len() as u64 > h.greater_than,
                        None => true,
                    };
                    if passes {
                        out.push(projection);
                    }
                }
                if query.distinct {
                    let mut seen = HashSet::new();
                    out.retain(|r| seen.insert(r.clone()));
                }
                out
            }
        };
        stats.output_rows = id_rows.len();
        // Resolve ids to owned values once, at the result-set boundary.
        id_rows
            .into_iter()
            .map(|row| row.into_iter().map(|id| id.resolve().clone()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TableRef;
    use cfd_relation::{Schema, Tuple};

    /// cust relation of Fig. 1.
    fn cust() -> Relation {
        let schema = Schema::builder("cust")
            .text("CC")
            .text("AC")
            .text("PN")
            .text("NM")
            .text("STR")
            .text("CT")
            .text("ZIP")
            .build();
        let rows = [
            ["01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"],
            ["01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"],
            ["01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"],
            ["01", "212", "2222222", "Jim", "Elm Str.", "NYC", "01202"],
            ["01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"],
            ["44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"],
        ];
        let mut rel = Relation::new(schema);
        for r in rows {
            rel.push(Tuple::new(r.iter().map(|s| Value::from(*s)).collect()))
                .unwrap();
        }
        rel
    }

    fn tableau_t2() -> Relation {
        // Pattern tableau T2 of Fig. 2, with '_' for the unnamed variable.
        let schema = Schema::builder("T2")
            .text("CC")
            .text("AC")
            .text("PN")
            .text("STR")
            .text("CT")
            .text("ZIP")
            .build();
        let mut rel = Relation::new(schema);
        for r in [
            ["01", "908", "_", "_", "MH", "_"],
            ["01", "212", "_", "_", "NYC", "_"],
            ["_", "_", "_", "_", "_", "_"],
        ] {
            rel.push(Tuple::new(r.iter().map(|s| Value::from(*s)).collect()))
                .unwrap();
        }
        rel
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(cust());
        c.register(tableau_t2());
        c
    }

    /// `t.A ≍ tp.A` on the X side: (t.A = tp.A OR tp.A = '_').
    fn x_match(attr: &str) -> Expr {
        Expr::or(vec![
            Expr::col("t", attr).eq(Expr::col("tp", attr)),
            Expr::col("tp", attr).eq(Expr::str("_")),
        ])
    }

    /// `t.A !≍ tp.A` on the Y side: (t.A <> tp.A AND tp.A <> '_').
    fn y_mismatch(attr: &str) -> Expr {
        Expr::and(vec![
            Expr::col("t", attr).ne(Expr::col("tp", attr)),
            Expr::col("tp", attr).ne(Expr::str("_")),
        ])
    }

    /// The QC query of Fig. 5 for CFD ϕ2.
    fn qc_query() -> SelectQuery {
        SelectQuery::new()
            .item(SelectItem::wildcard("t"))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("T2", "tp"))
            .filter(Expr::and(vec![
                x_match("CC"),
                x_match("AC"),
                x_match("PN"),
                Expr::or(vec![y_mismatch("STR"), y_mismatch("CT"), y_mismatch("ZIP")]),
            ]))
    }

    /// The QV query of Fig. 5 for CFD ϕ2.
    fn qv_query() -> SelectQuery {
        SelectQuery::new()
            .distinct()
            .item(SelectItem::expr(Expr::col("t", "CC")))
            .item(SelectItem::expr(Expr::col("t", "AC")))
            .item(SelectItem::expr(Expr::col("t", "PN")))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("T2", "tp"))
            .filter(Expr::and(vec![x_match("CC"), x_match("AC"), x_match("PN")]))
            .group(Expr::col("t", "CC"))
            .group(Expr::col("t", "AC"))
            .group(Expr::col("t", "PN"))
            .having_count_distinct_gt(
                vec![
                    Expr::col("t", "STR"),
                    Expr::col("t", "CT"),
                    Expr::col("t", "ZIP"),
                ],
                1,
            )
    }

    #[test]
    fn qc_finds_constant_violations_t1_t2() {
        // Example 4.1: QC over Fig. 1 returns t1 and t2 (area code 908 but city NYC).
        let c = catalog();
        for strategy in [Strategy::cnf(), Strategy::dnf(), Strategy::as_written()] {
            let exec = Executor::new(&c).with_strategy(strategy);
            let result = exec.run(&qc_query()).unwrap();
            let names = result.column_values("NM").unwrap();
            assert_eq!(names.len(), 2, "strategy {strategy:?}");
            assert!(names.contains(&Value::from("Mike")));
            assert!(names.contains(&Value::from("Rick")));
        }
    }

    #[test]
    fn qv_on_clean_groups_returns_nothing() {
        // On Fig. 1 every group agreeing on (CC, AC, PN) also agrees on
        // (STR, CT, ZIP), so the multi-tuple query returns no keys.
        let c = catalog();
        let exec = Executor::new(&c);
        let result = exec.run(&qv_query()).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn qv_detects_groups_with_two_y_values() {
        // Modify t2 to live on a different street: now (01,908,1111111) has two
        // distinct (STR, CT, ZIP) projections and QV must report that key.
        let mut data = cust();
        let str_id = data.schema().resolve("STR").unwrap();
        data.set_value(1, str_id, Value::from("Other Ave."));
        let mut c = Catalog::new();
        c.register(data);
        c.register(tableau_t2());
        for strategy in [Strategy::cnf(), Strategy::dnf()] {
            let exec = Executor::new(&c).with_strategy(strategy);
            let result = exec.run(&qv_query()).unwrap();
            assert_eq!(result.len(), 1, "strategy {strategy:?}");
            assert_eq!(
                result.rows()[0],
                vec![
                    Value::from("01"),
                    Value::from("908"),
                    Value::from("1111111")
                ]
            );
        }
    }

    #[test]
    fn cnf_and_dnf_strategies_agree_on_results() {
        let c = catalog();
        let q = qc_query();
        let cnf = Executor::new(&c)
            .with_strategy(Strategy::cnf())
            .run(&q)
            .unwrap();
        let dnf = Executor::new(&c)
            .with_strategy(Strategy::dnf())
            .run(&q)
            .unwrap();
        let mut cnf_rows = cnf.rows().to_vec();
        let mut dnf_rows = dnf.rows().to_vec();
        cnf_rows.sort();
        dnf_rows.sort();
        assert_eq!(cnf_rows, dnf_rows);
    }

    #[test]
    fn dnf_strategy_uses_indexes_and_scans_less() {
        let c = catalog();
        let q = qc_query();
        let (_, cnf_stats) = Executor::new(&c)
            .with_strategy(Strategy::cnf())
            .run_with_stats(&q)
            .unwrap();
        let (_, dnf_stats) = Executor::new(&c)
            .with_strategy(Strategy::dnf())
            .run_with_stats(&q)
            .unwrap();
        assert_eq!(cnf_stats.index_probes, 0);
        assert!(dnf_stats.index_probes > 0);
        assert!(dnf_stats.rows_examined <= cnf_stats.rows_examined);
    }

    #[test]
    fn single_table_select_with_filter() {
        let c = catalog();
        let q = SelectQuery::new()
            .item(SelectItem::expr(Expr::col("t", "NM")))
            .from(TableRef::aliased("cust", "t"))
            .filter(Expr::col("t", "CT").eq(Expr::str("NYC")));
        let result = Executor::new(&c).run(&q).unwrap();
        assert_eq!(result.len(), 4);
        assert_eq!(result.columns(), &["t.NM".to_string()]);
    }

    #[test]
    fn select_without_where_returns_cross_product() {
        let c = catalog();
        let q = SelectQuery::new()
            .item(SelectItem::expr(Expr::col("t", "NM")))
            .item(SelectItem::expr(Expr::col("tp", "CT")))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("T2", "tp"));
        let result = Executor::new(&c).run(&q).unwrap();
        assert_eq!(result.len(), 6 * 3);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let c = catalog();
        let q = SelectQuery::new()
            .distinct()
            .item(SelectItem::expr(Expr::col("t", "CT")))
            .from(TableRef::aliased("cust", "t"));
        let result = Executor::new(&c).run(&q).unwrap();
        assert_eq!(result.len(), 3); // NYC, PHI, EDI
    }

    #[test]
    fn group_by_with_having_threshold() {
        let c = catalog();
        // Cities having more than one distinct street.
        let q = SelectQuery::new()
            .item(SelectItem::expr(Expr::col("t", "CT")))
            .from(TableRef::aliased("cust", "t"))
            .group(Expr::col("t", "CT"))
            .having_count_distinct_gt(vec![Expr::col("t", "STR")], 1);
        let result = Executor::new(&c).run(&q).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows()[0], vec![Value::from("NYC")]);
    }

    #[test]
    fn case_masking_in_projection() {
        let c = catalog();
        let q = SelectQuery::new()
            .distinct()
            .item(SelectItem::aliased(
                Expr::case(
                    Expr::col("tp", "CC"),
                    vec![(Expr::str("@"), Expr::str("@"))],
                    Expr::col("t", "CC"),
                ),
                "CC",
            ))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("T2", "tp"))
            .filter(Expr::col("tp", "CC").eq(Expr::str("01")));
        let result = Executor::new(&c).run(&q).unwrap();
        // tp.CC is never '@' here, so the mask passes t.CC through.
        assert_eq!(result.column_values("CC").unwrap().len(), 2);
    }

    #[test]
    fn error_on_unknown_table_and_duplicate_alias() {
        let c = catalog();
        let q = SelectQuery::new()
            .item(SelectItem::wildcard("t"))
            .from(TableRef::aliased("nope", "t"));
        assert!(matches!(
            Executor::new(&c).run(&q),
            Err(SqlError::UnknownTable(_))
        ));

        let q = SelectQuery::new()
            .item(SelectItem::wildcard("t"))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("T2", "t"));
        assert!(matches!(
            Executor::new(&c).run(&q),
            Err(SqlError::DuplicateAlias(_))
        ));
    }

    #[test]
    fn error_on_malformed_queries() {
        let c = catalog();
        let no_items = SelectQuery::new().from(TableRef::named("cust"));
        assert!(matches!(
            Executor::new(&c).run(&no_items),
            Err(SqlError::Unsupported(_))
        ));

        let no_from = SelectQuery::new().item(SelectItem::wildcard("t"));
        assert!(matches!(
            Executor::new(&c).run(&no_from),
            Err(SqlError::Unsupported(_))
        ));

        let having_without_group = SelectQuery::new()
            .item(SelectItem::wildcard("t"))
            .from(TableRef::aliased("cust", "t"))
            .having_count_distinct_gt(vec![Expr::col("t", "CT")], 1);
        assert!(matches!(
            Executor::new(&c).run(&having_without_group),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn empty_outer_relation_yields_empty_result() {
        let mut c = Catalog::new();
        c.register(cust());
        c.register_as(
            "empty_tab",
            Relation::new(tableau_t2().schema().renamed("empty_tab")),
        );
        let q = SelectQuery::new()
            .item(SelectItem::wildcard("t"))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("empty_tab", "tp"));
        let result = Executor::new(&c).run(&q).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn result_set_accessors() {
        let c = catalog();
        let q = SelectQuery::new()
            .item(SelectItem::expr(Expr::col("t", "NM")))
            .from(TableRef::aliased("cust", "t"));
        let result = Executor::new(&c).run(&q).unwrap();
        assert_eq!(result.len(), 6);
        assert!(!result.is_empty());
        assert!(result.contains(&[Value::from("Ben")]));
        assert!(result.column_index("t.NM").is_some());
        assert!(result.column_index("missing").is_none());
        assert!(result.column_values("missing").is_none());
    }

    #[test]
    fn stats_count_output_rows() {
        let c = catalog();
        let q = SelectQuery::new()
            .item(SelectItem::expr(Expr::col("t", "NM")))
            .from(TableRef::aliased("cust", "t"))
            .filter(Expr::col("t", "CC").eq(Expr::str("44")));
        let (result, stats) = Executor::new(&c).run_with_stats(&q).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(stats.output_rows, 1);
        assert_eq!(stats.joined_rows, 1);
    }

    #[test]
    fn prepared_queries_match_one_shot_runs() {
        let c = catalog();
        for strategy in [Strategy::cnf(), Strategy::dnf(), Strategy::as_written()] {
            let exec = Executor::new(&c).with_strategy(strategy);
            for query in [qc_query(), qv_query()] {
                let (oneshot, oneshot_stats) = exec.run_with_stats(&query).unwrap();
                let prepared = exec.prepare(&query).unwrap();
                assert_eq!(prepared.strategy(), strategy);
                assert_eq!(prepared.query(), &query);
                // Repeated runs of the same plan are stable and identical to
                // the one-shot path, counters included.
                for _ in 0..3 {
                    let (rs, stats) = prepared.run_with_stats().unwrap();
                    assert_eq!(rs, oneshot, "strategy {strategy:?}");
                    assert_eq!(stats, oneshot_stats, "strategy {strategy:?}");
                }
                assert_eq!(prepared.run().unwrap(), oneshot);
            }
        }
    }

    #[test]
    fn prepared_queries_outlive_catalog_and_executor() {
        // The prepared plan owns Arcs of the bound relations: dropping the
        // catalog and executor must not invalidate it, and it is Send + Sync.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let prepared = {
            let c = catalog();
            let exec = Executor::new(&c);
            exec.prepare(&qc_query()).unwrap()
        };
        assert_send_sync(&prepared);
        let result = prepared.run().unwrap();
        assert_eq!(result.column_values("NM").unwrap().len(), 2);
    }

    #[test]
    fn prepare_rejects_malformed_queries() {
        let c = catalog();
        let exec = Executor::new(&c);
        let no_items = SelectQuery::new().from(TableRef::named("cust"));
        assert!(matches!(
            exec.prepare(&no_items),
            Err(SqlError::Unsupported(_))
        ));
        let unknown = SelectQuery::new()
            .item(SelectItem::wildcard("t"))
            .from(TableRef::aliased("nope", "t"));
        assert!(matches!(
            exec.prepare(&unknown),
            Err(SqlError::UnknownTable(_))
        ));
    }

    #[test]
    fn three_way_join_with_id_equality() {
        // A miniature version of the merged detection query: two tableau
        // tables joined on id, plus the data relation.
        let mut c = catalog();
        let tx = {
            let schema = Schema::builder("TX").text("id").text("CC").build();
            let mut rel = Relation::new(schema);
            rel.push_values(vec!["1".into(), "01".into()]).unwrap();
            rel.push_values(vec!["2".into(), "44".into()]).unwrap();
            rel
        };
        let ty = {
            let schema = Schema::builder("TY").text("id").text("CT").build();
            let mut rel = Relation::new(schema);
            rel.push_values(vec!["1".into(), "NYC".into()]).unwrap();
            rel.push_values(vec!["2".into(), "EDI".into()]).unwrap();
            rel
        };
        c.register(tx);
        c.register(ty);
        let q = SelectQuery::new()
            .item(SelectItem::expr(Expr::col("t", "NM")))
            .from(TableRef::aliased("cust", "t"))
            .from(TableRef::aliased("TX", "tx"))
            .from(TableRef::aliased("TY", "ty"))
            .filter(Expr::and(vec![
                Expr::col("tx", "id").eq(Expr::col("ty", "id")),
                Expr::col("t", "CC").eq(Expr::col("tx", "CC")),
                Expr::col("t", "CT").eq(Expr::col("ty", "CT")),
            ]));
        for strategy in [Strategy::cnf(), Strategy::dnf()] {
            let result = Executor::new(&c).with_strategy(strategy).run(&q).unwrap();
            // Matches: id 1 -> (CC=01, CT=NYC): Mike, Rick, Joe, Jim; id 2 -> Ian.
            assert_eq!(result.len(), 5, "strategy {strategy:?}");
        }
    }
}
