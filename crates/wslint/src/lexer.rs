//! A hand-rolled, dependency-free Rust lexer — token level only.
//!
//! The lexer produces a flat token stream that is exact about the things a
//! text grep cannot be:
//!
//! * string, raw-string, byte-string and char literal *contents* never leak
//!   tokens (`let x = ".unwrap()";` contains no `unwrap` identifier);
//! * `//` inside a string literal does not start a comment;
//! * block comments nest (`/* outer /* inner */ still comment */`);
//! * `'a` lifetimes are distinguished from `'a'` char literals;
//! * raw strings honour their `#` fences (`r#"..."#`, `r##"..."##`), and
//!   raw identifiers (`r#match`) are not mistaken for raw strings.
//!
//! It is **not** a parser: there is no AST, no expression structure, no name
//! resolution and no type information. Everything built on top of it
//! (see [`crate::rules`]) is a heuristic over token patterns and says so.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `for`, `HashMap`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A char or byte-char literal (`'x'`, `'\''`, `b'\n'`).
    CharLit,
    /// A string or byte-string literal (`"…"`, `b"…"`).
    StrLit,
    /// A raw (byte) string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStrLit,
    /// A numeric literal (`42`, `0xff`, `1.5e-3`, `2048usize`).
    NumLit,
    /// A `//`-to-end-of-line comment, including doc comments.
    LineComment,
    /// A (possibly nested) `/* … */` comment, including doc comments.
    BlockComment,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One token: kind, exact source text, and the 1-based line it starts on.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into a flat token stream. Never fails: unterminated literals
/// or comments simply extend to the end of the input (the linter's job is
/// to scan code that already compiles).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    toks: Vec<Token<'a>>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while let Some(c) = self.peek_char(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                ' ' | '\t' | '\r' => self.pos += 1,
                '\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                '/' if self.peek_char(1) == Some('/') => {
                    self.line_comment();
                    self.push(TokenKind::LineComment, start, line);
                }
                '/' if self.peek_char(1) == Some('*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                '"' => {
                    self.string_body();
                    self.push(TokenKind::StrLit, start, line);
                }
                '\'' => self.lifetime_or_char(start, line),
                'r' | 'b' => self.maybe_prefixed_literal(start, line),
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::NumLit, start, line);
                }
                c if is_ident_start(c) => {
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                }
                c => {
                    self.pos += c.len_utf8();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.toks
    }

    fn peek_char(&self, ahead: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(ahead)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.toks.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    /// `// …` up to (not including) the newline.
    fn line_comment(&mut self) {
        while let Some(c) = self.peek_char(0) {
            if c == '\n' {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    /// `/* … */` with nesting; counts contained newlines.
    fn block_comment(&mut self) {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while let Some(c) = self.peek_char(0) {
            if c == '/' && self.peek_char(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek_char(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += c.len_utf8();
            }
        }
    }

    /// A `"…"` body with escapes; counts contained newlines. The caller has
    /// already decided this is a (byte) string.
    fn string_body(&mut self) {
        self.pos += 1; // opening quote
        while let Some(c) = self.peek_char(0) {
            match c {
                '\\' => {
                    self.pos += 1;
                    if let Some(esc) = self.peek_char(0) {
                        if esc == '\n' {
                            self.line += 1;
                        }
                        self.pos += esc.len_utf8();
                    }
                }
                '"' => {
                    self.pos += 1;
                    return;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += c.len_utf8(),
            }
        }
    }

    /// `r…`/`b…` might prefix a literal (`r"…"`, `r#"…"#`, `r#ident`,
    /// `b'x'`, `b"…"`, `br##"…"##`) or just start an ordinary identifier.
    fn maybe_prefixed_literal(&mut self, start: usize, line: u32) {
        let mut ahead = 1; // past the `r`/`b`
        let first = self.peek_char(0);
        if first == Some('b') {
            match self.peek_char(1) {
                Some('\'') => {
                    // b'…': a byte-char literal.
                    self.pos += 2;
                    self.char_tail();
                    self.push(TokenKind::CharLit, start, line);
                    return;
                }
                Some('"') => {
                    // b"…": a byte-string literal.
                    self.pos += 1;
                    self.string_body();
                    self.push(TokenKind::StrLit, start, line);
                    return;
                }
                Some('r') => ahead = 2, // maybe br"…" / br#"…"#
                _ => {}
            }
        }
        // At `r` (directly, or after a leading `b`): count `#` fences, then
        // decide raw string vs raw identifier vs plain identifier.
        if first == Some('r') || ahead == 2 {
            let mut fences = 0usize;
            while self.peek_char(ahead + fences) == Some('#') {
                fences += 1;
            }
            match self.peek_char(ahead + fences) {
                Some('"') => {
                    self.pos += ahead + fences + 1;
                    self.raw_string_tail(fences);
                    self.push(TokenKind::RawStrLit, start, line);
                    return;
                }
                Some(c) if fences == 1 && is_ident_start(c) => {
                    // r#ident: a raw identifier, not a raw string.
                    self.pos += ahead + fences;
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                    return;
                }
                _ => {}
            }
        }
        // Just an identifier that happens to start with `r`/`b`.
        self.ident();
        self.push(TokenKind::Ident, start, line);
    }

    /// The body of a raw string after the opening quote: runs to a `"`
    /// followed by `fences` `#` characters. No escapes; newlines counted.
    fn raw_string_tail(&mut self, fences: usize) {
        while let Some(c) = self.peek_char(0) {
            if c == '"' {
                let mut matched = 0;
                while matched < fences && self.peek_char(1 + matched) == Some('#') {
                    matched += 1;
                }
                if matched == fences {
                    self.pos += 1 + fences;
                    return;
                }
                self.pos += 1;
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += c.len_utf8();
            }
        }
    }

    /// After a bare `'`: a lifetime (`'a`, `'_`, `'static`) or a char
    /// literal (`'a'`, `'\''`, `'∂'`). The discriminator: an ident run
    /// directly followed by a closing `'` is a char literal; otherwise it is
    /// a lifetime.
    fn lifetime_or_char(&mut self, start: usize, line: u32) {
        match self.peek_char(1) {
            Some(c) if is_ident_start(c) => {
                // Scan the ident run after the quote.
                let mut ahead = 1;
                while let Some(n) = self.peek_char(ahead) {
                    if is_ident_continue(n) {
                        ahead += 1;
                    } else {
                        break;
                    }
                }
                if self.peek_char(ahead) == Some('\'') {
                    // 'x' (the run is one char for a valid literal).
                    self.pos += 1;
                    self.char_tail();
                    self.push(TokenKind::CharLit, start, line);
                } else {
                    // 'lifetime — consume quote + ident run.
                    for _ in 0..ahead {
                        self.pos += self.peek_char(0).map_or(1, char::len_utf8);
                    }
                    self.push(TokenKind::Lifetime, start, line);
                }
            }
            _ => {
                // '\n', '(', '1' … : a char literal.
                self.pos += 1;
                self.char_tail();
                self.push(TokenKind::CharLit, start, line);
            }
        }
    }

    /// The rest of a char literal after the opening quote: one (possibly
    /// escaped) char, then the closing quote.
    fn char_tail(&mut self) {
        if self.peek_char(0) == Some('\\') {
            self.pos += 1;
            if let Some(esc) = self.peek_char(0) {
                self.pos += esc.len_utf8();
                // \u{…} escapes: consume through the closing brace.
                if esc == 'u' && self.peek_char(0) == Some('{') {
                    while let Some(c) = self.peek_char(0) {
                        self.pos += c.len_utf8();
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
        } else if let Some(c) = self.peek_char(0) {
            self.pos += c.len_utf8();
        }
        if self.peek_char(0) == Some('\'') {
            self.pos += 1;
        }
    }

    fn ident(&mut self) {
        while let Some(c) = self.peek_char(0) {
            if is_ident_continue(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    /// Numbers: digits, `_` separators, radix prefixes, type suffixes and
    /// simple float forms (`1.5`, `1e9`, `1.5e-3`). A trailing `.` that is
    /// not followed by a digit (ranges, method calls) is left alone.
    fn number(&mut self) {
        while let Some(c) = self.peek_char(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                let at_exponent = (c == 'e' || c == 'E')
                    && matches!(self.peek_char(1), Some('+' | '-'))
                    && matches!(self.peek_char(2), Some(d) if d.is_ascii_digit());
                self.pos += 1;
                if at_exponent {
                    self.pos += 1; // the sign; digits follow normally
                }
            } else if c == '.' && matches!(self.peek_char(1), Some(d) if d.is_ascii_digit()) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "unwrap"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n\"two\nlines\"\nb /* x\ny */ c";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text.contains(text)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("two"), 2);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }
}
