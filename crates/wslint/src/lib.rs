//! `wslint` — the in-tree workspace linter.
//!
//! An offline, dependency-free static-analysis pass over every Rust source
//! in this workspace. It machine-checks the cross-cutting invariants the
//! repo's CHANGES.md documents but the compiler cannot see:
//!
//! * **poison_unwrap** — shared locks recover from poisoning instead of
//!   cascading panics (`PoisonError::into_inner`), except in the two
//!   sanctioned poison-recovery registries;
//! * **hash_iteration** — report/plan/repair construction never leaks
//!   `HashMap`/`HashSet` iteration order into canonical bytes;
//! * **panic_path** — serve/detect/repair/relation/sqlgen request paths
//!   return typed errors, never `unwrap`/`panic!`;
//! * **thread_spawn** — unscoped threads only in the serving worker pool;
//! * **parallelism_source** — one cached `available_parallelism` wrapper.
//!
//! # Scope, honestly
//!
//! This is a **token-level** checker, not a parser: the lexer
//! ([`lexer::lex`]) understands strings, raw strings with `#` fences, char
//! literals vs. lifetimes, nested block comments and doc comments — so a
//! `.unwrap()` inside a string or doc example is never flagged — but the
//! rules on top match token patterns, not resolved names. A `HashMap`
//! hidden behind a type alias, or `std::thread::spawn` renamed through a
//! `use … as`, will not be seen. That trade (no dependencies, a few
//! hundred lines, zero build-time cost) is deliberate; the rules are
//! tripwires for the idioms actually used in this codebase, with an
//! allow-comment escape hatch that forces the justification into the diff:
//!
//! ```text
//! // wslint: allow(panic_path, "index bounded by the loop over rel.len()")
//! ```

pub mod lexer;
pub mod report;
pub mod rules;

pub use rules::{lint_source, Allow, FileFindings, RuleInfo, Violation, RULES};
