//! The rule engine: token-pattern rules over the [`crate::lexer`] stream.
//!
//! # Honest scope
//!
//! Every rule here is a **token-level heuristic** — there is no parser, no
//! name resolution and no type information behind it. Each rule documents
//! the approximation it makes (e.g. [`HASH_ITERATION`] tracks identifiers
//! that were *visibly* declared as `HashMap`/`HashSet` in the same file; a
//! hash map smuggled through a type alias or a function return value is not
//! seen). The rules err toward silence on constructs they cannot classify;
//! the escape hatch for the false positives they do produce is an
//! allow-comment **with a written reason**:
//!
//! ```text
//! // wslint: allow(panic_path, "i < rel.len() loop bound makes row() infallible")
//! ```
//!
//! An allow excuses matching findings on its own line (trailing comment) or
//! on the next code line. An allow without a reason, or naming an unknown
//! rule, is itself an (unexcusable) violation — the whole point is that
//! every exemption carries its justification in the diff.

use crate::lexer::{lex, Token, TokenKind};

/// One lint rule's identity and the invariant it guards.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The name used in diagnostics and `wslint: allow(<name>, …)`.
    pub name: &'static str,
    /// One-line statement of the guarded invariant.
    pub summary: &'static str,
}

/// `poison_unwrap` (L1): a `.lock()`/`.read()`/`.write()` result unwrapped
/// on the spot. A panic on another thread would then cascade through every
/// thread that touches the lock — the repo's contract is that append-only
/// or resettable shared state *recovers* from poisoning
/// (`PoisonError::into_inner`, or rebuild-and-`clear_poison`) instead.
/// Sanctioned: the poison-recovering interner/placeholder registries and
/// test code.
pub const POISON_UNWRAP: RuleInfo = RuleInfo {
    name: "poison_unwrap",
    summary: "lock()/read()/write() must not be blindly unwrapped; recover from poisoning",
};

/// `hash_iteration` (L2): iterating a `HashMap`/`HashSet` in modules whose
/// iteration order can reach `canonical_bytes` or placeholder numbering.
/// Byte-deterministic reports and repairs are a documented contract; hash
/// iteration order is not deterministic across processes. Excused when the
/// surrounding lines visibly sort the result (or collect into a `BTree*`),
/// or by an allow-comment arguing order independence.
pub const HASH_ITERATION: RuleInfo = RuleInfo {
    name: "hash_iteration",
    summary: "no order-leaking HashMap/HashSet iteration in report/plan/repair construction",
};

/// `panic_path` (L3): `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in non-test code of the request-serving crates
/// (`serve`, `detect`, `repair`, `relation`, `sqlgen`). Request paths
/// return typed errors; a panic is at best a contained
/// `Error::WorkerPanicked` and at worst a crashed process.
pub const PANIC_PATH: RuleInfo = RuleInfo {
    name: "panic_path",
    summary:
        "no unwrap/expect/panic!/unreachable!/todo! on serve/detect/repair/relation/sqlgen paths",
};

/// `thread_spawn` (L4): `std::thread::spawn`/`thread::Builder` outside the
/// serving worker pool. Everything else uses `thread::scope`, so worker
/// lifetimes are structured and a panic cannot orphan a detached thread.
pub const THREAD_SPAWN: RuleInfo = RuleInfo {
    name: "thread_spawn",
    summary: "unscoped thread::spawn only in serve::pool; everywhere else thread::scope",
};

/// `parallelism_source` (L5): `available_parallelism` may only be called
/// inside `cfd_detect::available_cores` — the one cached source every
/// shard/thread budget derives from (the raw call re-reads cgroup files at
/// ~14µs a call and made µs-scale serving paths planner-visible in PR 6).
pub const PARALLELISM_SOURCE: RuleInfo = RuleInfo {
    name: "parallelism_source",
    summary: "available_parallelism only inside cfd_detect::available_cores",
};

/// All five rules, in rule-number order.
pub const RULES: [RuleInfo; 5] = [
    POISON_UNWRAP,
    HASH_ITERATION,
    PANIC_PATH,
    THREAD_SPAWN,
    PARALLELISM_SOURCE,
];

/// Pseudo-rule for malformed allow-comments; not excusable.
pub const MALFORMED_ALLOW: &str = "malformed_allow";

/// Files in which [`POISON_UNWRAP`] is sanctioned: the two poison-*recovery*
/// modules (their whole design is surviving another thread's panic).
const POISON_SANCTIONED: [&str; 2] = [
    "crates/relation/src/interner.rs",
    "crates/relation/src/placeholder.rs",
];

/// Modules in scope for [`HASH_ITERATION`]: where iteration order can reach
/// report bytes, plan step order, or repair placeholder numbering.
const HASH_SCOPED: [&str; 3] = [
    "crates/detect/src/report.rs",
    "crates/detect/src/planner.rs",
    "crates/repair/src/",
];

/// Crates in scope for [`PANIC_PATH`] (their `src/` trees).
const PANIC_SCOPED: [&str; 6] = [
    "crates/serve/src/",
    "crates/detect/src/",
    "crates/repair/src/",
    "crates/relation/src/",
    "crates/sqlgen/src/",
    "crates/store/src/",
];

/// The one file allowed to spawn unscoped threads.
const SPAWN_SANCTIONED: &str = "crates/serve/src/pool.rs";

/// The one file allowed to call `available_parallelism`.
const PARALLELISM_SANCTIONED: &str = "crates/detect/src/sharded.rs";

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    /// The trimmed source line, for the human-readable diagnostic.
    pub excerpt: String,
}

/// One parsed `wslint: allow(rule, reason)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// Everything the engine found in one file.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Unexcused violations (these fail the build).
    pub violations: Vec<Violation>,
    /// Parsed, well-formed allow-comments (whether or not they excused
    /// anything this run).
    pub allows: Vec<Allow>,
    /// How many raw findings were excused by an allow-comment.
    pub excused: usize,
}

/// Lints one file's source. `path` must be workspace-relative with `/`
/// separators (it drives the per-rule scoping); `test_file` marks sources
/// that are test code wholesale (anything under a `tests/` directory).
pub fn lint_source(path: &str, src: &str, test_file: bool) -> FileFindings {
    let toks = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let code: Vec<Token<'_>> = toks.iter().copied().filter(|t| !t.is_comment()).collect();
    let test_ranges = if test_file {
        vec![(0, code.len())]
    } else {
        test_regions(&code)
    };
    let in_test = |i: usize| test_ranges.iter().any(|&(s, e)| i >= s && i <= e);
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    };

    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |rule: &'static str, line: u32| {
        raw.push(Violation {
            rule,
            file: path.to_string(),
            line,
            excerpt: excerpt(line),
        });
    };

    scan_poison_unwrap(path, &code, &in_test, &mut push);
    scan_hash_iteration(path, &code, &in_test, &mut push);
    scan_panic_path(path, &code, &in_test, &mut push);
    scan_thread_spawn(path, &code, &in_test, &mut push);
    scan_parallelism_source(path, &code, &mut push);

    apply_allows(path, &toks, &code, raw, &excerpt)
}

// ---------------------------------------------------------------------------
// Allow-comments
// ---------------------------------------------------------------------------

/// Parses allow-comments out of the token stream and filters the raw
/// findings through them. An allow excuses findings of its rule on the
/// comment's own line and on the first code line after it.
fn apply_allows(
    path: &str,
    toks: &[Token<'_>],
    code: &[Token<'_>],
    raw: Vec<Violation>,
    excerpt: &dyn Fn(u32) -> String,
) -> FileFindings {
    let mut out = FileFindings::default();
    // (rule, set of excused lines) per well-formed allow.
    let mut excusals: Vec<(String, [u32; 2])> = Vec::new();
    for tok in toks {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("wslint:") else {
            continue;
        };
        let next_code_line = code
            .iter()
            .find(|t| t.line > tok.line)
            .map_or(tok.line, |t| t.line);
        match parse_allow(rest) {
            Some((rule, reason)) if RULES.iter().any(|r| r.name == rule) => {
                excusals.push((rule.to_string(), [tok.line, next_code_line]));
                out.allows.push(Allow {
                    rule: rule.to_string(),
                    file: path.to_string(),
                    line: tok.line,
                    reason: reason.to_string(),
                });
            }
            _ => out.violations.push(Violation {
                rule: MALFORMED_ALLOW,
                file: path.to_string(),
                line: tok.line,
                excerpt: excerpt(tok.line),
            }),
        }
    }
    for v in raw {
        let excused = excusals
            .iter()
            .any(|(rule, lines)| *rule == v.rule && lines.contains(&v.line));
        if excused {
            out.excused += 1;
        } else {
            out.violations.push(v);
        }
    }
    out.violations.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Parses `allow(<rule>, <reason>)` (after the `wslint:` prefix). The
/// reason may be quoted; it must be non-empty. Returns `None` when
/// malformed or reason-less.
fn parse_allow(rest: &str) -> Option<(&str, &str)> {
    let rest = rest.trim();
    let args = rest.strip_prefix("allow(")?.strip_suffix(')')?;
    let (rule, reason) = args.split_once(',')?;
    let rule = rule.trim();
    let reason = reason.trim().trim_matches('"').trim();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some((rule, reason))
}

// ---------------------------------------------------------------------------
// cfg(test) regions
// ---------------------------------------------------------------------------

/// Token-index ranges (inclusive) covered by `#[cfg(test)]`-gated items and
/// `#[test]` functions. Heuristic: after a test-marking attribute, the
/// region is the next brace-balanced `{…}` block (an item ending in `;`
/// before any `{` has no region).
fn test_regions(code: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(is_punct(code, i, "#") && is_punct(code, i + 1, "[")) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching(code, i + 1, "[", "]") else {
            break;
        };
        if attr_marks_test(&code[i + 2..attr_end]) {
            // Skip any further attributes between this one and the item.
            let mut j = attr_end + 1;
            while is_punct(code, j, "#") && is_punct(code, j + 1, "[") {
                match matching(code, j + 1, "[", "]") {
                    Some(end) => j = end + 1,
                    None => break,
                }
            }
            // Find the item's opening brace (or `;` for a braceless item).
            while j < code.len() && !is_punct(code, j, "{") && !is_punct(code, j, ";") {
                j += 1;
            }
            if is_punct(code, j, "{") {
                let end = matching(code, j, "{", "}").unwrap_or(code.len() - 1);
                regions.push((j, end));
                i = j + 1;
                continue;
            }
        }
        i = attr_end + 1;
    }
    regions
}

/// Whether attribute tokens (between `#[` and `]`) gate on tests:
/// `#[test]` exactly, or a `cfg(…)` mentioning `test` without `not`.
fn attr_marks_test(attr: &[Token<'_>]) -> bool {
    if attr.len() == 1 && attr[0].text == "test" {
        return true;
    }
    let has = |name: &str| {
        attr.iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == name)
    };
    has("cfg") && has("test") && !has("not")
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(code: &[Token<'_>], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open_idx) {
        if t.kind == TokenKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Token-pattern helpers
// ---------------------------------------------------------------------------

fn is_punct(code: &[Token<'_>], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(code: &[Token<'_>], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn ident_in(code: &[Token<'_>], i: usize, names: &[&str]) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && names.contains(&t.text))
}

fn in_scope(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.starts_with(s) || path == *s)
}

// ---------------------------------------------------------------------------
// The five rules
// ---------------------------------------------------------------------------

/// L1: `.lock()`/`.read()`/`.write()` (zero-argument, so `Read::read(buf)`
/// never matches) immediately followed by `.unwrap()`/`.expect(`.
fn scan_poison_unwrap(
    path: &str,
    code: &[Token<'_>],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(&'static str, u32),
) {
    if in_scope(path, &POISON_SANCTIONED) {
        return;
    }
    for i in 0..code.len() {
        if is_punct(code, i, ".")
            && ident_in(code, i + 1, &["lock", "read", "write"])
            && is_punct(code, i + 2, "(")
            && is_punct(code, i + 3, ")")
            && is_punct(code, i + 4, ".")
            && ident_in(code, i + 5, &["unwrap", "expect"])
            && is_punct(code, i + 6, "(")
            && !in_test(i)
        {
            push(POISON_UNWRAP.name, code[i + 5].line);
        }
    }
}

/// L3: `.unwrap()`/`.expect(` calls and panicking macros in the guarded
/// crates' non-test code.
fn scan_panic_path(
    path: &str,
    code: &[Token<'_>],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(&'static str, u32),
) {
    if !in_scope(path, &PANIC_SCOPED) {
        return;
    }
    for i in 0..code.len() {
        if in_test(i) {
            continue;
        }
        let method = i > 0
            && is_punct(code, i - 1, ".")
            && ident_in(code, i, &["unwrap", "expect"])
            && is_punct(code, i + 1, "(");
        let makro = ident_in(code, i, &["panic", "unreachable", "todo", "unimplemented"])
            && is_punct(code, i + 1, "!");
        if method || makro {
            push(PANIC_PATH.name, code[i].line);
        }
    }
}

/// L4: `thread::spawn` / `thread::Builder` outside the serving pool.
fn scan_thread_spawn(
    path: &str,
    code: &[Token<'_>],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(&'static str, u32),
) {
    if path == SPAWN_SANCTIONED {
        return;
    }
    for i in 0..code.len() {
        if is_ident(code, i, "thread")
            && is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && ident_in(code, i + 3, &["spawn", "Builder"])
            && !in_test(i)
        {
            push(THREAD_SPAWN.name, code[i].line);
        }
    }
}

/// L5: any mention of `available_parallelism` outside its one wrapper.
/// Strict — test code included — because every budget must flow through the
/// cached `available_cores`.
fn scan_parallelism_source(
    path: &str,
    code: &[Token<'_>],
    push: &mut dyn FnMut(&'static str, u32),
) {
    if path == PARALLELISM_SANCTIONED {
        return;
    }
    for t in code {
        if t.kind == TokenKind::Ident && t.text == "available_parallelism" {
            push(PARALLELISM_SOURCE.name, t.line);
        }
    }
}

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// How many following source lines may carry the sort that canonicalizes a
/// hash iteration before the site is flagged.
const SORT_WINDOW: u32 = 10;

/// L2: iteration over identifiers that are *visibly* `HashMap`/`HashSet`
/// typed in this file (type annotation on a `let`/field/param, or a
/// `let`-initializer mentioning `HashMap`/`HashSet` before the `;`).
/// A site is excused when the same or the next [`SORT_WINDOW`] lines
/// visibly sort (or `BTree*`-collect) — order then never leaves the
/// function unsorted — or by allow-comment.
fn scan_hash_iteration(
    path: &str,
    code: &[Token<'_>],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(&'static str, u32),
) {
    if !in_scope(path, &HASH_SCOPED) {
        return;
    }
    let hashed = hash_idents(code);
    if hashed.is_empty() {
        return;
    }
    let is_hashed = |i: usize| {
        code.get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && hashed.contains(&t.text))
    };
    let mut flag = |i: usize, line: u32| {
        if !in_test(i) && !sorted_nearby(code, line) {
            push(HASH_ITERATION.name, line);
        }
    };
    for i in 0..code.len() {
        // `h.iter()` / `h.keys()` / … — receiver directly before the call.
        if is_hashed(i)
            && is_punct(code, i + 1, ".")
            && ident_in(code, i + 2, &ITER_METHODS)
            && is_punct(code, i + 3, "(")
        {
            flag(i, code[i].line);
        }
        // `for x in h {` / `for x in &h {` / `for x in &mut h {`.
        if is_ident(code, i, "for") {
            if let Some(j) = (i + 1..(i + 16).min(code.len())).find(|&j| is_ident(code, j, "in")) {
                let mut k = j + 1;
                while is_punct(code, k, "&") || is_ident(code, k, "mut") {
                    k += 1;
                }
                if is_hashed(k) && is_punct(code, k + 1, "{") {
                    flag(k, code[k].line);
                }
            }
        }
    }
}

/// Identifiers declared as hash collections in this file. Two visible
/// forms: `name: [&mut] HashMap<…>` (let/field/param annotations) and
/// `let [mut] name … = … HashMap::… ;` initializers.
fn hash_idents<'a>(code: &[Token<'a>]) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    for i in 0..code.len() {
        if !ident_in(code, i, &["HashMap", "HashSet"]) {
            continue;
        }
        // Backward form: name : [& mut 'a] Hash{Map,Set}
        let mut j = i;
        while j > 0
            && (is_punct(code, j - 1, "&")
                || is_ident(code, j - 1, "mut")
                || code
                    .get(j - 1)
                    .is_some_and(|t| t.kind == TokenKind::Lifetime))
        {
            j -= 1;
        }
        if j >= 2 && is_punct(code, j - 1, ":") && !is_punct(code, j - 2, ":") {
            if let Some(t) = code.get(j - 2) {
                if t.kind == TokenKind::Ident && !out.contains(&t.text) {
                    out.push(t.text);
                }
            }
        }
        // Forward form: let [mut] name = … Hash{Map,Set} … ; — scan back to
        // the nearest `let` on the same statement (no `;` in between).
        let mut k = i;
        while k > 0 && !is_punct(code, k - 1, ";") && !is_punct(code, k - 1, "{") {
            k -= 1;
            if is_ident(code, k, "let") {
                let name_idx = if is_ident(code, k + 1, "mut") {
                    k + 2
                } else {
                    k + 1
                };
                if let Some(t) = code.get(name_idx) {
                    if t.kind == TokenKind::Ident && !out.contains(&t.text) {
                        out.push(t.text);
                    }
                }
                break;
            }
        }
    }
    out
}

/// Whether any token on `line ..= line + SORT_WINDOW` sorts a collection or
/// names a `BTree*` type (collecting into one canonicalizes order).
fn sorted_nearby(code: &[Token<'_>], line: u32) -> bool {
    const SORTS: [&str; 7] = [
        "sort",
        "sort_by",
        "sort_unstable",
        "sort_by_key",
        "sort_unstable_by",
        "sort_by_cached_key",
        "sort_unstable_by_key",
    ];
    code.iter()
        .filter(|t| t.line >= line && t.line <= line + SORT_WINDOW)
        .any(|t| {
            t.kind == TokenKind::Ident
                && (SORTS.contains(&t.text) || t.text == "BTreeMap" || t.text == "BTreeSet")
        })
}
