//! The `wslint` binary: walks the workspace sources, lints every file,
//! writes `LINT_REPORT.json`, prints human diagnostics, and exits non-zero
//! on any unexcused violation.
//!
//! Usage: `wslint [--root DIR] [--report FILE]`
//! Defaults: root = current directory, report = `<root>/LINT_REPORT.json`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wslint::report::render_json;
use wslint::rules::{lint_source, Allow, Violation, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a file path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let report_path = report_path.unwrap_or_else(|| root.join("LINT_REPORT.json"));

    let files = match collect_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("wslint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut violations: Vec<Violation> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut excused = 0usize;
    let mut scanned = 0usize;
    for (path, rel, test_file) in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("wslint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        let findings = lint_source(rel, &src, *test_file);
        violations.extend(findings.violations);
        allows.extend(findings.allows);
        excused += findings.excused;
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let json = render_json(scanned, &violations, &allows);
    if let Err(e) = std::fs::write(&report_path, json) {
        eprintln!("wslint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    for v in &violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.excerpt);
    }
    eprintln!(
        "wslint: {} files, {} violation(s), {} allow(s), {} excused — report at {}",
        scanned,
        violations.len(),
        allows.len(),
        excused,
        report_path.display()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("wslint: rules in force:");
        for r in RULES {
            eprintln!("  {:20} {}", r.name, r.summary);
        }
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("wslint: {msg}\nusage: wslint [--root DIR] [--report FILE]");
    ExitCode::from(2)
}

/// Collects every `.rs` file under `crates/*/src`, `crates/*/tests`,
/// `crates/*/benches`, `src/`, and `tests/`, sorted for deterministic
/// output. Returns `(absolute path, workspace-relative path, is test
/// context)` triples; bench and test trees count as test context.
fn collect_sources(root: &Path) -> std::io::Result<Vec<(PathBuf, String, bool)>> {
    let mut out = Vec::new();
    let mut roots: Vec<(PathBuf, bool)> =
        vec![(root.join("src"), false), (root.join("tests"), true)];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for c in crates {
            roots.push((c.join("src"), false));
            roots.push((c.join("tests"), true));
            roots.push((c.join("benches"), true));
        }
    }
    for (dir, test_ctx) in roots {
        if dir.is_dir() {
            walk(root, &dir, test_ctx, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(
    root: &Path,
    dir: &Path,
    test_ctx: bool,
    out: &mut Vec<(PathBuf, String, bool)>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(root, &path, test_ctx, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((path.clone(), rel, test_ctx));
        }
    }
    Ok(())
}
