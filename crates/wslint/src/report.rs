//! Machine-readable output: a hand-rolled JSON writer for
//! `LINT_REPORT.json` (no serde — the linter is deliberately
//! dependency-free).

use crate::rules::{Allow, Violation, RULES};

/// Renders the full lint report as a JSON document.
pub fn render_json(files_scanned: usize, violations: &[Violation], allows: &[Allow]) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str("  \"tool\": \"wslint\",\n");
    s.push_str("  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(r.name));
    }
    s.push_str("],\n");
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"violation_count\": {},\n", violations.len()));
    s.push_str(&format!("  \"allow_count\": {},\n", allows.len()));

    s.push_str("  \"allow_count_by_rule\": {");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let n = allows.iter().filter(|a| a.rule == r.name).count();
        s.push_str(&format!("{}: {n}", json_str(r.name)));
    }
    s.push_str("},\n");

    s.push_str("  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"excerpt\": {}}}{}\n",
            json_str(v.rule),
            json_str(&v.file),
            v.line,
            json_str(&v.excerpt),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");

    s.push_str("  \"allows\": [\n");
    for (i, a) in allows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
            json_str(&a.rule),
            json_str(&a.file),
            a.line,
            json_str(&a.reason),
            if i + 1 < allows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_is_parseable_shape() {
        let v = Violation {
            rule: "panic_path",
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            excerpt: "x.unwrap()".into(),
        };
        let json = render_json(1, &[v], &[]);
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"rule\": \"panic_path\""));
    }
}
