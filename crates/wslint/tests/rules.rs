//! Self-tests: the lexer's edge cases and every rule firing on a
//! deliberately-violating fixture snippet (the acceptance criterion for
//! trusting a green lint run). All fixtures live inside string literals, so
//! this file never trips the linter it tests.

use wslint::lexer::{lex, TokenKind};
use wslint::rules::{lint_source, FileFindings, MALFORMED_ALLOW, RULES};

fn idents(src: &str) -> Vec<&str> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

// ---------------------------------------------------------------------------
// Lexer edge cases
// ---------------------------------------------------------------------------

#[test]
fn raw_strings_with_fences_leak_no_tokens() {
    let src = r####"let x = r#".unwrap() inside "quotes" stays text"#; let y = r##"nested "# fence"##;"####;
    let ids = idents(src);
    assert_eq!(ids, vec!["let", "x", "let", "y"]);
    let kinds: Vec<TokenKind> = lex(src).into_iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds.iter().filter(|k| **k == TokenKind::RawStrLit).count(),
        2
    );
}

#[test]
fn byte_and_raw_byte_strings_are_literals_not_idents() {
    let src = r###"let a = b"bytes.unwrap()"; let c = br#"raw bytes"#; let d = b'x';"###;
    assert_eq!(idents(src), vec!["let", "a", "let", "c", "let", "d"]);
}

#[test]
fn nested_block_comments_close_correctly() {
    let src = "before /* outer /* inner */ still comment */ after";
    assert_eq!(idents(src), vec!["before", "after"]);
    let toks = lex(src);
    let block = toks
        .iter()
        .find(|t| t.kind == TokenKind::BlockComment)
        .expect("one block comment");
    assert!(block.text.contains("inner"));
    assert!(block.text.ends_with("*/"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'q'; let n = '\\n'; x }";
    let toks = lex(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text)
        .collect();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::CharLit)
        .map(|t| t.text)
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    assert_eq!(chars, vec!["'q'", "'\\n'"]);
}

#[test]
fn line_comment_markers_inside_strings_do_not_comment() {
    let src = "let url = \"https://example.com\"; let live = after;";
    // `example`/`com` must NOT appear (string), `after` must (still code).
    let ids = idents(src);
    assert!(ids.contains(&"after"));
    assert!(!ids.contains(&"example"));
    assert!(lex(src).iter().all(|t| t.kind != TokenKind::LineComment));
}

#[test]
fn doc_comments_are_comments() {
    let src = "/// example: x.unwrap()\n//! also doc\nfn real() {}";
    let ids = idents(src);
    assert_eq!(ids, vec!["fn", "real"]);
}

// ---------------------------------------------------------------------------
// Rule fixtures: each rule fires on a violating snippet
// ---------------------------------------------------------------------------

fn lint(path: &str, src: &str) -> FileFindings {
    lint_source(path, src, false)
}

fn rules_fired(f: &FileFindings) -> Vec<&str> {
    f.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn poison_unwrap_fires_and_respects_sanctioned_modules() {
    let bad = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }";
    let f = lint("crates/core/src/x.rs", bad);
    assert_eq!(rules_fired(&f), vec!["poison_unwrap"]);

    // Same code in a sanctioned poison-recovery module: no poison_unwrap
    // (the unwrap still trips panic_path there — relation is a guarded
    // crate — but that is the other rule's verdict).
    let f = lint("crates/relation/src/interner.rs", bad);
    assert!(!rules_fired(&f).contains(&"poison_unwrap"));

    // read()/write() immediately expected also fire.
    let f = lint(
        "crates/core/src/x.rs",
        "fn g(l: &RwLock<u32>) { l.read().expect(\"x\"); l.write().unwrap(); }",
    );
    assert_eq!(rules_fired(&f), vec!["poison_unwrap", "poison_unwrap"]);

    // io::Read::read(&mut buf) takes an argument: never flagged.
    let f = lint(
        "crates/core/src/x.rs",
        "fn h(s: &mut TcpStream, b: &mut [u8]) { s.read(b).unwrap(); }",
    );
    assert!(rules_fired(&f).is_empty());
}

#[test]
fn hash_iteration_fires_in_scoped_modules_only() {
    let bad = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, v) in m.iter() { use_it(k, v); } }";
    let f = lint("crates/repair/src/x.rs", bad);
    assert_eq!(rules_fired(&f), vec!["hash_iteration"]);

    // Out of scope (ordering cannot reach canonical bytes): clean.
    let f = lint("crates/discovery/src/x.rs", bad);
    assert!(rules_fired(&f).is_empty());

    // A visible sort within the window canonicalizes the order: clean.
    let sorted = "fn f(m: HashMap<u32, u32>) -> Vec<u32> {\n    let mut v: Vec<u32> = m.into_keys().collect();\n    v.sort_unstable();\n    v\n}";
    let f = lint("crates/detect/src/planner.rs", sorted);
    assert!(rules_fired(&f).is_empty(), "sorted iteration must pass");

    // `for … in &set {` with no sort fires too.
    let f = lint(
        "crates/repair/src/x.rs",
        "fn f(s: HashSet<u32>) { for x in &s { emit(x); } }",
    );
    assert_eq!(rules_fired(&f), vec!["hash_iteration"]);
}

#[test]
fn panic_path_fires_in_request_crates_and_skips_tests() {
    let f = lint(
        "crates/serve/src/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
    );
    assert_eq!(rules_fired(&f), vec!["panic_path"]);

    for mac in [
        "panic!(\"boom\")",
        "unreachable!()",
        "todo!()",
        "unimplemented!()",
    ] {
        let src = format!("fn f() {{ {mac}; }}");
        let f = lint("crates/sqlgen/src/x.rs", &src);
        assert_eq!(rules_fired(&f), vec!["panic_path"], "macro {mac}");
    }

    // Outside the guarded crates: not this rule's business.
    let f = lint("src/x.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
    assert!(rules_fired(&f).is_empty());

    // #[cfg(test)] code inside a guarded crate: exempt.
    let src =
        "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}";
    let f = lint("crates/detect/src/x.rs", src);
    assert!(
        rules_fired(&f).is_empty(),
        "cfg(test) module must be exempt"
    );

    // …but #[cfg(not(test))] is NOT a test gate.
    let src = "#[cfg(not(test))]\nmod prod {\n    fn f() { Some(1).unwrap(); }\n}";
    let f = lint("crates/detect/src/x.rs", src);
    assert_eq!(rules_fired(&f), vec!["panic_path"]);

    // A whole test file (tests/ tree) is exempt wholesale.
    let f = lint_source(
        "crates/serve/tests/x.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        true,
    );
    assert!(f.violations.is_empty());
}

#[test]
fn thread_spawn_fires_outside_the_pool() {
    let bad = "fn f() { std::thread::spawn(|| work()); }";
    let f = lint("crates/repair/src/x.rs", bad);
    assert_eq!(rules_fired(&f), vec!["thread_spawn"]);

    let builder = "fn f() { thread::Builder::new().spawn(|| work()); }";
    let f = lint("crates/detect/src/x.rs", builder);
    assert_eq!(rules_fired(&f), vec!["thread_spawn"]);

    // The sanctioned pool module: clean.
    let f = lint("crates/serve/src/pool.rs", bad);
    assert!(rules_fired(&f).is_empty());

    // thread::scope is the structured form: clean anywhere.
    let f = lint(
        "crates/repair/src/x.rs",
        "fn f() { std::thread::scope(|s| { s.spawn(|| work()); }); }",
    );
    assert!(rules_fired(&f).is_empty());
}

#[test]
fn parallelism_source_fires_everywhere_but_the_wrapper() {
    let bad =
        "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
    let f = lint("crates/repair/src/x.rs", bad);
    // Fires alongside panic-free scoping rules if any — filter to it.
    assert!(
        rules_fired(&f).contains(&"parallelism_source"),
        "got {:?}",
        rules_fired(&f)
    );

    let f = lint("crates/detect/src/sharded.rs", bad);
    assert!(!rules_fired(&f).contains(&"parallelism_source"));
}

// ---------------------------------------------------------------------------
// Allow-comments
// ---------------------------------------------------------------------------

#[test]
fn a_reasoned_allow_excuses_the_next_code_line() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // wslint: allow(panic_path, \"fixture: justified\")\n    x.unwrap()\n}";
    let f = lint("crates/serve/src/x.rs", src);
    assert!(f.violations.is_empty(), "got {:?}", f.violations);
    assert_eq!(f.excused, 1);
    assert_eq!(f.allows.len(), 1);
    assert_eq!(f.allows[0].rule, "panic_path");
    assert_eq!(f.allows[0].reason, "fixture: justified");
}

#[test]
fn a_trailing_allow_excuses_its_own_line() {
    let src =
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // wslint: allow(panic_path, \"fixture\")";
    let f = lint("crates/serve/src/x.rs", src);
    assert!(f.violations.is_empty());
    assert_eq!(f.excused, 1);
}

#[test]
fn an_allow_for_the_wrong_rule_excuses_nothing() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // wslint: allow(poison_unwrap, \"wrong rule\")\n    x.unwrap()\n}";
    let f = lint("crates/serve/src/x.rs", src);
    assert_eq!(rules_fired(&f), vec!["panic_path"]);
    assert_eq!(f.excused, 0);
}

#[test]
fn reasonless_or_unknown_allows_are_themselves_violations() {
    // No reason at all.
    let f = lint("src/x.rs", "// wslint: allow(panic_path)\nfn f() {}");
    assert_eq!(rules_fired(&f), vec![MALFORMED_ALLOW]);

    // An empty reason.
    let f = lint("src/x.rs", "// wslint: allow(panic_path, \"\")\nfn f() {}");
    assert_eq!(rules_fired(&f), vec![MALFORMED_ALLOW]);

    // An unknown rule name.
    let f = lint(
        "src/x.rs",
        "// wslint: allow(no_such_rule, \"reason\")\nfn f() {}",
    );
    assert_eq!(rules_fired(&f), vec![MALFORMED_ALLOW]);
}

#[test]
fn rule_table_is_complete() {
    let names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        vec![
            "poison_unwrap",
            "hash_iteration",
            "panic_path",
            "thread_spawn",
            "parallelism_source"
        ]
    );
    for r in RULES {
        assert!(!r.summary.is_empty());
    }
}
