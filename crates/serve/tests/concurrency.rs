//! Serving-layer concurrency tests: many client threads hammering one
//! server, asserting the three contracts of the crate docs —
//! byte-identical reports under interleaved reads and writes, no
//! cross-tenant failure propagation, and micro-batch coalescing.
//!
//! Everything here runs meaningfully in release mode (CI runs this file
//! under `--release`): the assertions are behavioral, not `debug_assert!`s.

use cfd::Engine;
use cfd_datagen::cust::{cust_instance, fig2_cfd_set};
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::BatchOp;
use cfd_relation::Tuple;
use cfd_repair::RepairKind;
use cfd_serve::{ServeError, Server, ServerConfig, TenantSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The tax workload engine: two CFDs over the 15-attribute tax schema.
fn tax_engine() -> Engine {
    let w = CfdWorkload::new(11);
    Engine::builder()
        .rules([
            w.single(EmbeddedFd::ZipToState, 120, 100.0),
            w.single(EmbeddedFd::AreaToCity, 100, 60.0),
        ])
        .build()
        .expect("workload rules are consistent")
}

fn tax_rows(size: usize, seed: u64) -> Vec<Tuple> {
    TaxGenerator::new(TaxConfig {
        size,
        noise_percent: 5.0,
        seed,
    })
    .generate()
    .relation
    .to_tuples()
}

fn cust_engine() -> Engine {
    Engine::builder()
        .rule_set(fig2_cfd_set())
        .build()
        .expect("fig2 rules are consistent")
}

/// Checks that a snapshot is internally consistent: its report must be
/// byte-identical to a from-scratch detection of its relation.
fn assert_snapshot_consistent(engine: &Engine, snapshot: &TenantSnapshot) {
    let mut session = engine
        .session(Arc::clone(snapshot.relation()))
        .expect("snapshot relation matches the engine schema");
    let fresh = session.detect().expect("detection succeeds");
    assert_eq!(
        snapshot.report().canonical_bytes(),
        fresh.canonical_bytes(),
        "published report diverged from from-scratch detection \
         at generation {}",
        snapshot.generation()
    );
}

/// The hammer: 4 writer threads stream inserts (one also deletes) while 4
/// reader threads continuously read. Readers must observe monotonically
/// increasing generations; every sampled snapshot and the final state must
/// be byte-identical to from-scratch detection.
#[test]
fn hammer_interleaved_reads_and_writes_stay_byte_identical() {
    const WRITERS: usize = 4;
    const BATCHES_PER_WRITER: usize = 10;
    const OPS_PER_BATCH: usize = 10;
    const DELETED: usize = 10;

    let base = 2_000;
    let engine = tax_engine();
    let base_rel = Arc::new(
        TaxGenerator::new(TaxConfig {
            size: base,
            noise_percent: 5.0,
            seed: 7,
        })
        .generate()
        .relation,
    );
    let streamed = tax_rows(WRITERS * BATCHES_PER_WRITER * OPS_PER_BATCH, 8);

    let server = Server::with_config(ServerConfig {
        workers: 4,
        max_batch_ops: 8,
        max_batch_delay: Duration::from_millis(1),
        ..ServerConfig::default()
    })
    .expect("spawn server pool");
    server
        .create_tenant("hammer", engine.clone(), base_rel)
        .expect("create tenant");

    let writers_done = AtomicBool::new(false);
    let sampled: Vec<Arc<TenantSnapshot>> = std::thread::scope(|scope| {
        // Writers: each streams its own slice of the generated rows.
        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let server = server.clone();
                let rows: Vec<Tuple> = streamed
                    .chunks(BATCHES_PER_WRITER * OPS_PER_BATCH)
                    .nth(w)
                    .expect("one slice per writer")
                    .to_vec();
                scope.spawn(move || {
                    for batch in rows.chunks(OPS_PER_BATCH) {
                        let ops = batch.iter().cloned().map(BatchOp::Insert).collect();
                        let snap = server.stream("hammer", ops).expect("stream succeeds");
                        assert!(snap.generation() >= 1);
                    }
                    if w == 0 {
                        // Writer 0 also deletes the first rows it inserted —
                        // its earlier stream() calls returned, so the tuples
                        // are live and each delete removes exactly one row.
                        let ops = rows[..DELETED]
                            .iter()
                            .cloned()
                            .map(BatchOp::Delete)
                            .collect();
                        server.stream("hammer", ops).expect("deletes succeed");
                    }
                })
            })
            .collect();

        // Readers: spin until the writers finish, checking monotonicity and
        // sampling snapshots for post-hoc consistency verification.
        let reader_handles: Vec<_> = (0..4)
            .map(|_| {
                let server = server.clone();
                let done = &writers_done;
                scope.spawn(move || {
                    let mut last_generation = 0;
                    let mut reads = 0usize;
                    let mut first = None;
                    let last = loop {
                        let snap = server.snapshot("hammer").expect("tenant exists");
                        assert!(
                            snap.generation() >= last_generation,
                            "snapshot generations must never move backwards"
                        );
                        last_generation = snap.generation();
                        // detect() must keep serving under write load.
                        let report = server.detect("hammer").expect("tenant exists");
                        std::hint::black_box(report);
                        if first.is_none() {
                            first = Some(Arc::clone(&snap));
                        }
                        reads += 1;
                        if done.load(Ordering::Acquire) {
                            break snap;
                        }
                        std::thread::yield_now();
                    };
                    assert!(reads > 0);
                    [first.expect("looped at least once"), last]
                })
            })
            .collect();

        for handle in writer_handles {
            handle.join().expect("writer thread");
        }
        writers_done.store(true, Ordering::Release);
        reader_handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread"))
            .collect()
    });

    // Final state: exact row count, and the published report byte-identical
    // to from-scratch detection with the engine's configured detector.
    let total_streamed = WRITERS * BATCHES_PER_WRITER * OPS_PER_BATCH;
    let snap = server.snapshot("hammer").unwrap();
    assert_eq!(snap.relation().len(), base + total_streamed - DELETED);
    assert!(snap.generation() >= 1);
    let fresh = server.detect_fresh("hammer").unwrap();
    assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());

    // Every sampled snapshot — including mid-stream ones — was internally
    // consistent.
    for snapshot in &sampled {
        assert_snapshot_consistent(&engine, snapshot);
    }
}

/// A panic injected into one tenant's worker (while it holds that tenant's
/// writer lock — the worst case) leaves every other tenant serving
/// byte-identical reports, and the faulted tenant itself recovers on its
/// next write.
#[test]
fn a_tenant_panic_never_propagates_across_tenants() {
    let server = Server::with_config(ServerConfig {
        workers: 2,
        max_batch_ops: 16,
        max_batch_delay: Duration::ZERO,
        ..ServerConfig::default()
    })
    .expect("spawn server pool");
    for (name, seed) in [("alpha", 21u64), ("bravo", 22), ("charlie", 23)] {
        let data = TaxGenerator::new(TaxConfig {
            size: 500,
            noise_percent: 5.0,
            seed,
        })
        .generate()
        .relation;
        server
            .create_tenant(name, tax_engine(), Arc::new(data))
            .expect("create tenant");
    }
    let before_alpha = server.detect("alpha").unwrap();
    let before_charlie = server.detect("charlie").unwrap();

    for round in 0..3 {
        let err = server.inject_worker_panic("bravo").unwrap_err();
        assert!(err.is_worker_panic(), "round {round}: {err}");

        // The other tenants serve byte-identical reports, and those reports
        // still match from-scratch detection.
        let after_alpha = server.detect("alpha").unwrap();
        let after_charlie = server.detect("charlie").unwrap();
        assert_eq!(
            before_alpha.canonical_bytes(),
            after_alpha.canonical_bytes()
        );
        assert_eq!(
            before_charlie.canonical_bytes(),
            after_charlie.canonical_bytes()
        );
        let fresh = server.detect_fresh("alpha").unwrap();
        assert_eq!(after_alpha.canonical_bytes(), fresh.canonical_bytes());

        // Even the faulted tenant's READERS were never interrupted…
        let bravo_snapshot = server.snapshot("bravo").unwrap();
        assert_eq!(bravo_snapshot.generation(), round);

        // …and its write path recovers the poisoned lock transparently.
        let row = tax_rows(1, 99 + round).pop().unwrap();
        let snap = server
            .stream("bravo", vec![BatchOp::Insert(row)])
            .expect("the tenant recovers");
        assert_eq!(snap.generation(), round + 1);
        let fresh = server.detect_fresh("bravo").unwrap();
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
    }

    // The unrelated tenants also still accept writes.
    let row = tax_rows(1, 1234).pop().unwrap();
    let snap = server
        .stream("alpha", vec![BatchOp::Insert(row)])
        .expect("alpha unaffected");
    assert_eq!(snap.generation(), 1);
}

/// Concurrent single-op streams coalesce into shared flushes: with a
/// generous latency bound, 8 concurrent writers of one op each must land in
/// strictly fewer than 8 generations, every participant receiving the
/// snapshot of the flush that contained its op.
#[test]
fn concurrent_single_op_streams_coalesce_into_group_commits() {
    let engine = cust_engine();
    let server = Server::with_config(ServerConfig {
        workers: 4,
        max_batch_ops: 4,
        max_batch_delay: Duration::from_millis(200),
        ..ServerConfig::default()
    })
    .expect("spawn server pool");
    server
        .create_tenant("acme", engine.clone(), Arc::new(cust_instance()))
        .expect("create tenant");

    let rows = cust_instance().to_tuples();
    let snaps: Vec<Arc<TenantSnapshot>> = std::thread::scope(|scope| {
        (0..8)
            .map(|i| {
                let server = server.clone();
                let row = rows[i % rows.len()].clone();
                scope.spawn(move || {
                    server
                        .stream("acme", vec![BatchOp::Insert(row)])
                        .expect("stream succeeds")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("client thread"))
            .collect()
    });

    // All 8 ops landed…
    let last = server.snapshot("acme").unwrap();
    assert_eq!(last.relation().len(), cust_instance().len() + 8);
    // …in fewer flushes than requests (group commit), each participant
    // holding an internally consistent snapshot covering its own op.
    let max_generation = snaps.iter().map(|s| s.generation()).max().unwrap();
    assert!(
        max_generation < 8,
        "8 concurrent one-op streams must coalesce, got {max_generation} flushes"
    );
    assert_eq!(last.generation(), max_generation);
    for snap in &snaps {
        assert_snapshot_consistent(&engine, snap);
    }
    let fresh = server.detect_fresh("acme").unwrap();
    assert_eq!(last.report().canonical_bytes(), fresh.canonical_bytes());
}

/// Concurrent repair requests against two tenants run with their worker
/// fan-out clamped by the server's [`Server::repair_thread_cap`] (an even
/// core split across pool workers), so one tenant's repair cannot
/// monopolize the machine — and a third tenant's snapshot reads, which
/// never need the pool, keep being served at their quiescent rate while
/// both pool workers are busy repairing. The clamp only trades wall-clock:
/// both clamped repairs must be byte-identical to a single-threaded repair
/// of the same snapshot.
#[test]
fn concurrent_repairs_are_clamped_and_never_block_snapshot_reads() {
    let server = Server::with_config(ServerConfig {
        workers: 2,
        max_batch_ops: 16,
        max_batch_delay: Duration::ZERO,
        ..ServerConfig::default()
    })
    .expect("spawn server pool");
    // The clamp rule: an even split of the machine's cores across the
    // pool's workers, at least 1.
    let cores = cfd_detect::available_cores();
    assert_eq!(server.repair_thread_cap(), (cores / 2).max(1));

    // Two repair tenants whose engines ask for an absurd 64-thread repair
    // budget — the server must clamp it, not honor it.
    let greedy_engine = || {
        Engine::builder()
            .rules([
                CfdWorkload::new(11).single(EmbeddedFd::ZipToState, 120, 100.0),
                CfdWorkload::new(11).single(EmbeddedFd::AreaToCity, 100, 60.0),
            ])
            .config(
                cfd::EngineConfig::builder()
                    .repair_threads(64)
                    .build()
                    .expect("valid config"),
            )
            .build()
            .expect("workload rules are consistent")
    };
    for (name, seed) in [("alpha", 31u64), ("bravo", 32)] {
        let data = TaxGenerator::new(TaxConfig {
            size: 4_000,
            noise_percent: 5.0,
            seed,
        })
        .generate()
        .relation;
        server
            .create_tenant(name, greedy_engine(), Arc::new(data))
            .expect("create tenant");
    }
    server
        .create_tenant("reader", cust_engine(), Arc::new(cust_instance()))
        .expect("create tenant");

    // Baseline: the single-threaded repair of each tenant's snapshot.
    let sequential = |name: &str| {
        let snapshot = server.snapshot(name).unwrap();
        let mut session = greedy_engine()
            .session(Arc::clone(snapshot.relation()))
            .expect("snapshot matches engine schema");
        session
            .repair_with_threads(RepairKind::EquivClass, 1)
            .expect("repair succeeds")
    };
    let expected_alpha = sequential("alpha");
    let expected_bravo = sequential("bravo");

    let repairs_done = AtomicBool::new(false);
    let (alpha, bravo, reads) = std::thread::scope(|scope| {
        let alpha = scope.spawn(|| server.repair("alpha", RepairKind::EquivClass));
        let bravo = scope.spawn(|| server.repair("bravo", RepairKind::EquivClass));
        // The third tenant's snapshot reads bypass the pool entirely: they
        // must keep completing while both pool workers are busy repairing.
        let reader = scope.spawn(|| {
            let mut reads = 0usize;
            while !repairs_done.load(Ordering::Acquire) {
                let snap = server.snapshot("reader").expect("reads never blocked");
                assert_eq!(snap.generation(), 0);
                let report = server.detect("reader").expect("reads never blocked");
                assert!(!report.is_clean(), "cust instance has seeded violations");
                reads += 1;
                std::thread::yield_now();
            }
            reads
        });
        let alpha = alpha.join().expect("repair thread").expect("repair ok");
        let bravo = bravo.join().expect("repair thread").expect("repair ok");
        repairs_done.store(true, Ordering::Release);
        (alpha, bravo, reader.join().expect("reader thread"))
    });
    assert!(reads > 0, "snapshot reads ran during the repairs");

    // The clamp changed only wall-clock, never the answer: byte-identical
    // to the single-threaded repairs.
    for (got, expected) in [(&alpha, &expected_alpha), (&bravo, &expected_bravo)] {
        assert_eq!(got.modifications, expected.modifications);
        assert_eq!(got.repaired, expected.repaired);
        assert_eq!(got.cost.to_bits(), expected.cost.to_bits());
        assert_eq!(got.satisfied, expected.satisfied);
        assert!(got.satisfied, "tax workload repairs converge");
    }
    // Repairs were pure reads: both tenants still at generation 0.
    assert_eq!(server.snapshot("alpha").unwrap().generation(), 0);
    assert_eq!(server.snapshot("bravo").unwrap().generation(), 0);
}

/// Tenant lifecycle and addressing errors are scoped, typed and
/// recoverable.
#[test]
fn lifecycle_and_addressing_errors() {
    let server = Server::with_config(ServerConfig {
        workers: 1,
        max_batch_ops: 4,
        max_batch_delay: Duration::ZERO,
        ..ServerConfig::default()
    })
    .expect("spawn server pool");
    let unknown = |e: ServeError| matches!(e, ServeError::UnknownTenant(_));

    assert!(unknown(server.snapshot("ghost").unwrap_err()));
    assert!(unknown(server.detect("ghost").unwrap_err()));
    assert!(unknown(server.detect_fresh("ghost").unwrap_err()));
    assert!(unknown(server.stream("ghost", Vec::new()).unwrap_err()));
    assert!(unknown(
        server.repair("ghost", RepairKind::EquivClass).unwrap_err()
    ));
    assert!(unknown(server.inject_worker_panic("ghost").unwrap_err()));
    assert!(unknown(server.drop_tenant("ghost").unwrap_err()));

    server
        .create_tenant("acme", cust_engine(), Arc::new(cust_instance()))
        .unwrap();
    assert_eq!(
        server
            .create_tenant("acme", cust_engine(), Arc::new(cust_instance()))
            .unwrap_err(),
        ServeError::DuplicateTenant("acme".into())
    );

    // Repair through the server is a pure read on the snapshot.
    let before = server.snapshot("acme").unwrap();
    let repair = server.repair("acme", RepairKind::EquivClass).unwrap();
    assert!(repair.satisfied);
    assert!(repair.changes() > 0, "cust instance is dirty");
    let after = server.snapshot("acme").unwrap();
    assert_eq!(after.generation(), before.generation());

    // Dropping frees the name for a fresh tenant at generation 0.
    server.drop_tenant("acme").unwrap();
    server
        .create_tenant("acme", cust_engine(), Arc::new(cust_instance()))
        .unwrap();
    assert_eq!(server.snapshot("acme").unwrap().generation(), 0);
}
