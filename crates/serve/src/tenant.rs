//! One tenant: a prepared engine, a write-side session, a published
//! read-side snapshot, and the micro-batching machinery between them.
//!
//! # Snapshot isolation
//!
//! Each tenant splits its state into two halves:
//!
//! * the **writer half** — the authoritative [`Session`] behind a mutex;
//!   only batch flushes lock it, and only one flush runs at a time;
//! * the **reader half** — an immutable [`TenantSnapshot`] (`Arc<Relation>`
//!   plus the full violation report of exactly that instance plus a
//!   generation counter) behind an `RwLock<Arc<..>>` that is only ever
//!   held long enough to swap or clone the `Arc`.
//!
//! Readers therefore **never block on writers**: a detect during a
//! long-running flush serves the previous snapshot immediately, and the
//! report a reader sees is always consistent with the relation in the same
//! snapshot — there is no torn state, because the writer publishes
//! relation + report + generation as one atomic `Arc` swap.
//!
//! # Micro-batching (group commit)
//!
//! Streamed writes coalesce: the first writer into an empty pending buffer
//! becomes the **leader** and collects follower ops until either the batch
//! size bound is reached or the latency bound expires, then applies the
//! whole batch through one [`Session::apply_batch`] call and publishes one
//! new snapshot, handing every participant the same result. Because the
//! leader is by construction a *running* request (it elected itself on its
//! own worker), a pending batch always has a live owner — queued work can
//! wait on running work, never on other queued work, so the pool cannot
//! deadlock.
//!
//! # Failure containment
//!
//! A panic during a flush is caught *inside* the writer lock scope, the
//! session is rebuilt — from the last published snapshot for in-memory
//! tenants (cheap: sessions are lazy), or by reopening the store directory
//! (WAL replay) for disk-backed ones — and every waiter of that batch
//! receives [`cfd::Error::WorkerPanicked`]. A merely *rejected* batch
//! (validation error) triggers no rebuild at all: `Session::apply_batch`
//! is failure-atomic, so the session and all its prepared state stay
//! valid. The published snapshot is untouched —
//! readers keep being served — and the next write starts from known-good
//! state. An injected fault that panics while *holding* the writer lock
//! (see [`Tenant::crash_holding_writer`]) additionally exercises mutex
//! poison recovery: the poisoned lock is reclaimed, the session reset, and
//! the poison flag cleared.

use crate::error::{Result, ServeError};
use cfd::{Engine, Session};
use cfd_detect::{BatchOp, Violations};
use cfd_relation::Relation;
use cfd_repair::{RepairKind, RepairResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// The micro-batching knobs of one tenant (copied from the
/// [`ServerConfig`](crate::ServerConfig) at tenant creation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BatchConfig {
    /// Flush as soon as this many ops are pending (trigger threshold, not a
    /// cap — a single oversized request still flushes as one batch).
    pub max_batch_ops: usize,
    /// Flush at the latest this long after the leader started collecting.
    pub max_batch_delay: Duration,
}

/// An immutable, internally consistent view of one tenant at one moment:
/// the instance, the complete violation report **of exactly that
/// instance**, and the generation (number of applied batches) that
/// produced it.
///
/// Snapshots are what readers are served from; holding one never blocks any
/// writer, and a held snapshot stays valid (and byte-identical to a
/// from-scratch detection over [`TenantSnapshot::relation`]) forever, no
/// matter how far the tenant advances.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    relation: Arc<Relation>,
    report: Arc<Violations>,
    generation: u64,
}

impl TenantSnapshot {
    /// The instance this snapshot captured.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.relation
    }

    /// The full violation report of [`TenantSnapshot::relation`] —
    /// maintained incrementally, byte-identical to a from-scratch
    /// detection of that relation.
    pub fn report(&self) -> &Arc<Violations> {
        &self.report
    }

    /// How many batches had been applied when this snapshot was published
    /// (0 = the snapshot of tenant creation).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The pending micro-batch of one tenant.
struct Pending {
    ops: Vec<BatchOp>,
    /// One response channel per *follower* (the leader gets its result
    /// directly).
    waiters: Vec<Sender<Result<Arc<TenantSnapshot>>>>,
    /// Whether a leader is currently collecting. Cleared atomically with
    /// taking the batch, so every op lands in exactly one flush.
    leader: bool,
}

/// An RAII admission slot of one tenant: acquired (via [`Tenant::admit`])
/// before a pool-executed request is submitted, released when the request
/// finishes — whether it returned, errored, or panicked (the permit moves
/// into the job closure, so unwinding drops it too).
#[derive(Debug)]
pub(crate) struct AdmissionPermit {
    inflight: Arc<AtomicUsize>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

pub(crate) struct Tenant {
    engine: Engine,
    batch: BatchConfig,
    /// Store directory of a disk-backed tenant (`None` = in-memory). Panic
    /// recovery reopens the session from here instead of rebuilding from
    /// the published snapshot, so recovery replays the WAL.
    dir: Option<PathBuf>,
    /// Pool-executed requests currently in flight for this tenant.
    inflight: Arc<AtomicUsize>,
    /// Admission quota: [`Tenant::admit`] sheds requests beyond this many
    /// in flight (`usize::MAX` = unlimited).
    max_inflight: usize,
    /// The authoritative write-side session. Serialized; poisoning is
    /// recovered by rebuilding from the published snapshot.
    writer: Mutex<Session>,
    /// The read-side snapshot readers clone. Swapped wholesale by flushes.
    published: RwLock<Arc<TenantSnapshot>>,
    pending: Mutex<Pending>,
    /// Signals the collecting leader that the size bound was crossed.
    batch_grew: Condvar,
}

impl Tenant {
    /// Opens an in-memory tenant: schema-checks `data` against the engine,
    /// primes the write-side stream state, and publishes generation 0 (the
    /// full report of `data`).
    pub fn open(
        engine: Engine,
        data: Arc<Relation>,
        batch: BatchConfig,
        max_inflight: usize,
    ) -> Result<Tenant> {
        let mut session = engine.session(data).map_err(ServeError::from)?;
        // An empty batch primes the incremental detector and returns the
        // complete report of the current instance.
        let report = session.apply_batch(&[]).map_err(ServeError::from)?;
        Tenant::from_session(engine, session, report, batch, None, max_inflight)
    }

    /// Opens a **disk-backed** tenant from its store directory: creates the
    /// store on first open, recovers it (WAL replay, torn-tail truncation)
    /// on every later one, runs the initial full detection over the store,
    /// and publishes generation 0. The directory is remembered — panic
    /// recovery reopens the session from disk rather than from the
    /// published snapshot.
    pub fn open_from_dir(
        engine: Engine,
        dir: &Path,
        batch: BatchConfig,
        max_inflight: usize,
    ) -> Result<Tenant> {
        let mut session = engine.session_on_disk(dir).map_err(ServeError::from)?;
        let report = session.detect().map_err(ServeError::from)?;
        Tenant::from_session(
            engine,
            session,
            report,
            batch,
            Some(dir.to_path_buf()),
            max_inflight,
        )
    }

    fn from_session(
        engine: Engine,
        mut session: Session,
        report: Violations,
        batch: BatchConfig,
        dir: Option<PathBuf>,
        max_inflight: usize,
    ) -> Result<Tenant> {
        let relation = session.snapshot().map_err(ServeError::from)?;
        let snapshot = Arc::new(TenantSnapshot {
            relation,
            report: Arc::new(report),
            generation: 0,
        });
        Ok(Tenant {
            engine,
            batch,
            dir,
            inflight: Arc::new(AtomicUsize::new(0)),
            max_inflight,
            writer: Mutex::new(session),
            published: RwLock::new(snapshot),
            pending: Mutex::new(Pending {
                ops: Vec::new(),
                waiters: Vec::new(),
                leader: false,
            }),
            batch_grew: Condvar::new(),
        })
    }

    /// Takes an admission slot for one pool-executed request, shedding with
    /// [`ServeError::TenantBusy`] once `max_inflight` requests are already
    /// in flight for this tenant. The returned permit releases the slot on
    /// drop — including by unwinding, so a panicking request never leaks
    /// its slot.
    pub fn admit(&self, name: &str) -> Result<AdmissionPermit> {
        let admitted = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if admitted {
            Ok(AdmissionPermit {
                inflight: Arc::clone(&self.inflight),
            })
        } else {
            Err(ServeError::TenantBusy(name.to_string()))
        }
    }

    /// The currently published snapshot (cheap: clones one `Arc` under a
    /// momentary read lock — never blocks on a flush in progress).
    pub fn published(&self) -> Arc<TenantSnapshot> {
        Arc::clone(
            &self
                .published
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// From-scratch detection over the currently published snapshot with
    /// the tenant engine's configured detector — the verification path
    /// (the published report must be byte-identical to this).
    pub fn detect_from_scratch(&self) -> Result<Violations> {
        let snapshot = self.published();
        let mut session = self
            .engine
            .session(Arc::clone(&snapshot.relation))
            .map_err(ServeError::from)?;
        session.detect().map_err(ServeError::from)
    }

    /// Repairs the currently published snapshot. Pure read: runs on the
    /// snapshot `Arc`, mutates nothing, never touches the writer half.
    ///
    /// `thread_cap` bounds the repair engine's worker fan-out: the tenant
    /// runs with its engine's configured `repair_threads` clamped to the
    /// cap (and to ≥ 1). The server derives the cap from its pool size so
    /// one tenant's repair cannot monopolize the machine's cores under
    /// concurrent requests; the clamp only trades wall-clock — repair
    /// results are byte-identical at any thread count.
    pub fn repair(&self, kind: RepairKind, thread_cap: usize) -> Result<RepairResult> {
        let snapshot = self.published();
        let mut session = self
            .engine
            .session(Arc::clone(&snapshot.relation))
            .map_err(ServeError::from)?;
        let threads = self.engine.config().repair().threads.min(thread_cap).max(1);
        session
            .repair_with_threads(kind, threads)
            .map_err(ServeError::from)
    }

    /// Streams `ops` into the tenant, coalescing with concurrent writers
    /// (see the module docs), and returns the snapshot published by the
    /// flush that contained them — whose report covers these ops and
    /// possibly later ones from the same batch.
    pub fn stream(&self, ops: Vec<BatchOp>) -> Result<Arc<TenantSnapshot>> {
        let (tx, rx) = channel();
        let lead = {
            let mut pending = self.lock_pending();
            pending.ops.extend(ops);
            let crossed = pending.ops.len() >= self.batch.max_batch_ops;
            let lead = if pending.leader {
                pending.waiters.push(tx);
                false
            } else {
                pending.leader = true;
                true
            };
            if crossed {
                // Wake a collecting leader early (no-op when we lead).
                self.batch_grew.notify_all();
            }
            lead
        };
        if lead {
            self.lead_flush()
        } else {
            // The leader either sends a result or — if it panicked between
            // taking the batch and sending — drops our sender.
            rx.recv()
                .unwrap_or(Err(ServeError::Cfd(cfd::Error::WorkerPanicked)))
        }
    }

    /// The leader side of one group commit: collect until a bound trips,
    /// take the batch, apply, publish, notify.
    fn lead_flush(&self) -> Result<Arc<TenantSnapshot>> {
        let deadline = Instant::now() + self.batch.max_batch_delay;
        let (ops, waiters) = {
            let mut pending = self.lock_pending();
            loop {
                if pending.ops.len() >= self.batch.max_batch_ops {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = self
                    .batch_grew
                    .wait_timeout(pending, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                pending = guard;
            }
            // Taking the batch and stepping down as leader is one atomic
            // step under the pending lock: every op lands in exactly one
            // flush, and the next writer elects itself leader of the next.
            pending.leader = false;
            (
                std::mem::take(&mut pending.ops),
                std::mem::take(&mut pending.waiters),
            )
        };
        let result = self.apply(&ops);
        for waiter in waiters {
            let _ = waiter.send(result.clone());
        }
        result
    }

    /// Applies one coalesced batch through the writer session and publishes
    /// the resulting snapshot. Panics inside the apply are caught *here*,
    /// inside the lock scope: the session is rebuilt from the last
    /// published snapshot and the error is returned — the lock is released
    /// clean, not poisoned, and readers never notice.
    fn apply(&self, ops: &[BatchOp]) -> Result<Arc<TenantSnapshot>> {
        let mut session = self.lock_writer()?;
        let applied = {
            let session = &mut *session;
            catch_unwind(AssertUnwindSafe(|| {
                session
                    .apply_batch(ops)
                    .and_then(|report| Ok((report, session.snapshot()?)))
            }))
        };
        match applied {
            Ok(Ok((report, relation))) => {
                // Publish while still holding the writer lock: flushes are
                // serialized, so generations are strictly increasing and the
                // published snapshot always equals the writer state.
                let mut published = self
                    .published
                    .write()
                    .unwrap_or_else(PoisonError::into_inner);
                let snapshot = Arc::new(TenantSnapshot {
                    relation,
                    report: Arc::new(report),
                    generation: published.generation + 1,
                });
                *published = Arc::clone(&snapshot);
                Ok(snapshot)
            }
            Ok(Err(e)) => {
                // A rejected batch (arity mismatch, …) is failure-atomic at
                // the session layer: nothing was applied and every prepared
                // cache (indexes, plans, statistics) is still valid. Do NOT
                // reset the session — rebuilding it here would throw that
                // prepared state away on every malformed request.
                Err(ServeError::Cfd(e))
            }
            Err(_panic) => {
                self.reset_session(&mut session)?;
                Err(ServeError::Cfd(cfd::Error::WorkerPanicked))
            }
        }
    }

    /// Locks the writer session, recovering from poisoning: a poisoned lock
    /// means some request panicked while holding it (only possible through
    /// faults outside [`Tenant::apply`]'s own catch, e.g. the injected
    /// crash), so the session state is unknown — rebuild it from the last
    /// published snapshot and clear the poison flag.
    fn lock_writer(&self) -> Result<MutexGuard<'_, Session>> {
        match self.writer.lock() {
            Ok(guard) => Ok(guard),
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                self.reset_session(&mut guard)?;
                self.writer.clear_poison();
                Ok(guard)
            }
        }
    }

    /// Rebuilds the writer session — the recovery step after a panic.
    /// In-memory tenants rebuild from the last published snapshot (cheap:
    /// sessions are lazy, and the published relation `Arc` is shared, not
    /// cloned). Disk-backed tenants reopen from their store directory, so
    /// recovery goes through the store's own crash protocol (WAL replay):
    /// the recovered state is whatever was durably committed.
    ///
    /// Rejected batches do **not** come through here: `Session::apply_batch`
    /// is failure-atomic, so an `Err` leaves the session untouched and
    /// resetting would only discard valid prepared state.
    fn reset_session(&self, session: &mut Session) -> Result<()> {
        // Replace (and thereby drop) the old session first: a disk-backed
        // session's store must close — flushing its final checkpoint —
        // before a new store opens the same files.
        let relation = Arc::clone(&self.published().relation);
        *session = self.engine.session(relation).map_err(ServeError::from)?;
        if let Some(dir) = &self.dir {
            *session = self.engine.session_on_disk(dir).map_err(ServeError::from)?;
        }
        Ok(())
    }

    fn lock_pending(&self) -> MutexGuard<'_, Pending> {
        // Pending holds only plain data (ops + channels + a flag); it is
        // valid after any panic, so poisoning is recovered, not propagated.
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fault injection for tests and the serving bench: panics on the
    /// calling (pool worker) thread **while holding the writer lock** — the
    /// worst-case fault, poisoning the tenant's most central mutex. The
    /// containment contract says this must surface as
    /// [`cfd::Error::WorkerPanicked`] to this request only: other tenants
    /// are unaffected, this tenant's readers keep being served from the
    /// published snapshot, and its next write recovers the lock.
    pub fn crash_holding_writer(&self) -> ! {
        let _guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // wslint: allow(panic_path, "deliberate fault injection; the containment tests exist to catch exactly this panic")
        panic!("injected tenant fault (holding the writer lock)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, fig2_cfd_set};
    use cfd_relation::Tuple;

    fn engine() -> Engine {
        Engine::builder()
            .rule_set(fig2_cfd_set())
            .build()
            .expect("fig2 rules are consistent")
    }

    fn tenant() -> Tenant {
        tenant_with_quota(usize::MAX)
    }

    fn tenant_with_quota(max_inflight: usize) -> Tenant {
        Tenant::open(
            engine(),
            Arc::new(cust_instance()),
            BatchConfig {
                max_batch_ops: 64,
                max_batch_delay: Duration::ZERO,
            },
            max_inflight,
        )
        .expect("schema matches")
    }

    #[test]
    fn opening_publishes_the_full_report_at_generation_zero() {
        let tenant = tenant();
        let snap = tenant.published();
        assert_eq!(snap.generation(), 0);
        assert_eq!(snap.relation().len(), cust_instance().len());
        let fresh = tenant.detect_from_scratch().unwrap();
        assert_eq!(
            snap.report().canonical_bytes(),
            fresh.canonical_bytes(),
            "published report must be byte-identical to from-scratch"
        );
    }

    #[test]
    fn streaming_advances_generations_and_keeps_reports_consistent() {
        let tenant = tenant();
        let row = cust_instance().to_tuples()[0].clone();
        let snap = tenant.stream(vec![BatchOp::Insert(row)]).unwrap();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.relation().len(), cust_instance().len() + 1);
        let fresh = tenant.detect_from_scratch().unwrap();
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
    }

    #[test]
    fn a_rejected_batch_is_failure_atomic() {
        let tenant = tenant();
        let good = cust_instance().to_tuples()[0].clone();
        let err = tenant
            .stream(vec![
                BatchOp::Insert(good.clone()),
                BatchOp::Insert(Tuple::nulls(2)), // wrong arity: rejected
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Cfd(_)));
        // Nothing from the failed batch leaked: still generation 0, and the
        // next (valid) batch applies cleanly on the *same*, untouched
        // session — a rejected batch triggers no session rebuild.
        let snap = tenant.published();
        assert_eq!(snap.generation(), 0);
        assert_eq!(snap.relation().len(), cust_instance().len());
        let snap = tenant.stream(vec![BatchOp::Insert(good)]).unwrap();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.relation().len(), cust_instance().len() + 1);
        let fresh = tenant.detect_from_scratch().unwrap();
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
    }

    #[test]
    fn admission_permits_shed_beyond_the_quota_and_release_on_drop() {
        let tenant = tenant_with_quota(2);
        let a = tenant.admit("acme").unwrap();
        let _b = tenant.admit("acme").unwrap();
        let busy = tenant.admit("acme").unwrap_err();
        assert_eq!(busy, ServeError::TenantBusy("acme".into()));
        drop(a);
        let _c = tenant.admit("acme").expect("dropped permit frees a slot");
        assert!(tenant.admit("acme").is_err());
    }

    #[test]
    fn a_disk_backed_tenant_persists_across_reopen() {
        let dir =
            std::env::temp_dir().join(format!("cfd-serve-tenant-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let batch = BatchConfig {
            max_batch_ops: 64,
            max_batch_delay: Duration::ZERO,
        };
        let row = cust_instance().to_tuples()[0].clone();
        {
            let tenant = Tenant::open_from_dir(engine(), &dir, batch, usize::MAX).unwrap();
            assert_eq!(
                tenant.published().relation().len(),
                0,
                "fresh store is empty"
            );
            let mut ops: Vec<BatchOp> = cust_instance()
                .to_tuples()
                .into_iter()
                .map(BatchOp::Insert)
                .collect();
            ops.push(BatchOp::Insert(row.clone()));
            let snap = tenant.stream(ops).unwrap();
            assert_eq!(snap.relation().len(), cust_instance().len() + 1);
        }
        // Reopen: generation restarts at 0, but the committed data — and
        // its report — survived.
        let tenant = Tenant::open_from_dir(engine(), &dir, batch, usize::MAX).unwrap();
        let snap = tenant.published();
        assert_eq!(snap.generation(), 0);
        assert_eq!(snap.relation().len(), cust_instance().len() + 1);
        let fresh = tenant.detect_from_scratch().unwrap();
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
        // Writes keep working after recovery.
        let snap = tenant.stream(vec![BatchOp::Delete(row)]).unwrap();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.relation().len(), cust_instance().len());
        drop(tenant);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_is_a_pure_read() {
        let tenant = tenant();
        let before = tenant.published();
        let result = tenant.repair(RepairKind::EquivClass, 1).unwrap();
        assert!(result.satisfied);
        assert!(result.changes() > 0, "cust instance has violations");
        let after = tenant.published();
        assert_eq!(after.generation(), before.generation());
        assert_eq!(after.relation().len(), before.relation().len());
    }
}
