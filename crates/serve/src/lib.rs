//! Concurrent multi-tenant serving layer over prepared CFD engines.
//!
//! [`Server`] holds many [`Engine`](cfd::Engine)/`Session` pairs — one per
//! named **tenant** — and admits concurrent detect / repair / stream
//! requests from any number of threads onto one bounded worker pool.
//!
//! ```
//! use cfd_serve::{Server, ServerConfig};
//! use cfd_datagen::cust::{cust_instance, fig2_cfd_set};
//! use std::sync::Arc;
//!
//! let engine = cfd::Engine::builder().rule_set(fig2_cfd_set()).build()?;
//! let server = Server::new()?;
//! server.create_tenant("acme", engine, Arc::new(cust_instance()))?;
//!
//! // Reads are served from the tenant's published snapshot — O(1), never
//! // blocked by writes in progress.
//! let report = server.detect("acme")?;
//! assert!(!report.is_clean());
//! # Ok::<(), cfd_serve::ServeError>(())
//! ```
//!
//! # The three contracts
//!
//! 1. **No cross-tenant failure propagation.** A request that fails — up to
//!    and including a panic inside the engine, contained and surfaced as
//!    [`cfd::Error::WorkerPanicked`] — affects only its own tenant, and
//!    even there only the write path until the next write recovers it.
//!    Every other tenant keeps serving byte-identical reports throughout.
//! 2. **Snapshot isolation.** Each tenant publishes an immutable
//!    [`TenantSnapshot`] (relation + full report + generation) as one
//!    atomic `Arc` swap. Readers clone the `Arc` and never wait on
//!    writers; a held snapshot remains valid and self-consistent forever.
//! 3. **Micro-batched writes.** Concurrent [`Server::stream`] calls per
//!    tenant coalesce into single `Session::apply_batch` group commits,
//!    bounded in size ([`ServerConfig::max_batch_ops`]) and latency
//!    ([`ServerConfig::max_batch_delay`]); the published report after
//!    every flush is byte-identical to from-scratch detection.
//!
//! The worker pool ([`ServerConfig::workers`], default = available cores)
//! is shared across tenants and gives the server its admission control: at
//! most that many requests run at once; the rest queue FIFO.

pub mod error;
mod pool;
mod server;
mod tenant;

pub use error::{Result, ServeError};
pub use server::{Server, ServerConfig};
pub use tenant::TenantSnapshot;
