//! The multi-tenant server: a tenant registry plus the shared worker pool
//! every request is admitted on.

use crate::error::{Result, ServeError};
use crate::pool::WorkerPool;
use crate::tenant::{BatchConfig, Tenant, TenantSnapshot};
use cfd::Engine;
use cfd_detect::sharded::available_cores;
use cfd_detect::{BatchOp, Violations};
use cfd_relation::Relation;
use cfd_repair::{RepairKind, RepairResult};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

/// Tunables of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads in the shared pool — the maximum number of requests
    /// executing at once across all tenants. Defaults to the number of
    /// available cores (always ≥ 1).
    pub workers: usize,
    /// Micro-batching size bound: a streaming flush triggers as soon as
    /// this many ops are pending on a tenant. Defaults to 256.
    pub max_batch_ops: usize,
    /// Micro-batching latency bound: a flush leader collects concurrent
    /// writes for at most this long before applying whatever it has.
    /// `Duration::ZERO` disables coalescing-by-waiting (each leader flushes
    /// immediately, still merging whatever arrived while the previous flush
    /// ran). Defaults to 1 ms.
    pub max_batch_delay: Duration,
    /// Per-tenant admission quota: at most this many pool-executed requests
    /// ([`Server::detect_fresh`], [`Server::repair`], [`Server::stream`])
    /// may be in flight for any one tenant; excess requests are shed
    /// immediately with [`ServeError::TenantBusy`] instead of queueing, so
    /// one hot tenant cannot occupy the whole shared pool and starve the
    /// others. Snapshot reads ([`Server::detect`], [`Server::snapshot`])
    /// bypass the pool and are never shed. Defaults to `usize::MAX`
    /// (unlimited).
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: available_cores(),
            max_batch_ops: 256,
            max_batch_delay: Duration::from_millis(1),
            max_inflight: usize::MAX,
        }
    }
}

struct Inner {
    pool: WorkerPool,
    batch: BatchConfig,
    /// Per-request worker-thread cap for repair fan-out — see
    /// [`Server::repair_thread_cap`].
    repair_thread_cap: usize,
    /// Per-tenant admission quota — see [`ServerConfig::max_inflight`].
    max_inflight: usize,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
}

/// A concurrent multi-tenant serving front end over prepared CFD
/// [`Engine`]s.
///
/// The server holds one tenant (engine + write-side session +
/// published read-side snapshot) per name and admits every request —
/// detect, repair, stream — onto one bounded worker pool shared by all
/// tenants.
///
/// # Contracts
///
/// * **No cross-tenant failure propagation.** Any error returned by a
///   request — including a contained panic
///   ([`cfd::Error::WorkerPanicked`]) — is scoped to that request's
///   tenant. Every other tenant keeps serving reports byte-identical to
///   what it would have served had the fault never happened, and even the
///   faulting tenant's *readers* keep being served from its last published
///   snapshot.
/// * **Snapshot isolation.** Reads ([`Server::detect`],
///   [`Server::snapshot`], [`Server::repair`]) serve the tenant's last
///   published [`TenantSnapshot`] and never block on writes in progress;
///   writes publish relation + report + generation as one atomic swap.
/// * **Micro-batched writes.** Concurrent [`Server::stream`] calls to the
///   same tenant coalesce into one `Session::apply_batch` (group commit),
///   bounded by [`ServerConfig::max_batch_ops`] and
///   [`ServerConfig::max_batch_delay`]; every participant receives the
///   snapshot its ops landed in.
///
/// `Server` is `Clone` (a cheap handle) and all methods take `&self`:
/// share one server across however many request threads you have.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts a server with default [`ServerConfig`]. Fails with
    /// [`ServeError::Spawn`] when the OS refuses a worker thread.
    pub fn new() -> Result<Server> {
        Server::with_config(ServerConfig::default())
    }

    /// Starts a server with explicit tunables (each clamped to its
    /// meaningful minimum: at least one worker, batches of at least one
    /// op). Fails with [`ServeError::Spawn`] when the OS refuses a worker
    /// thread instead of panicking mid-construction.
    // Config by value: a builder-style constructor consumes its config
    // (callers construct it inline); taking a reference would force a
    // clone for no benefit on this cold path.
    #[allow(clippy::needless_pass_by_value)]
    pub fn with_config(config: ServerConfig) -> Result<Server> {
        let workers = config.workers.max(1);
        Ok(Server {
            inner: Arc::new(Inner {
                pool: WorkerPool::new(workers)?,
                batch: BatchConfig {
                    max_batch_ops: config.max_batch_ops.max(1),
                    max_batch_delay: config.max_batch_delay,
                },
                // With `workers` requests possibly running at once, an even
                // split of the machine's cores is the most one repair can
                // claim without starving concurrent requests of other
                // tenants.
                repair_thread_cap: (available_cores() / workers).max(1),
                max_inflight: config.max_inflight.max(1),
                tenants: RwLock::new(HashMap::new()),
            }),
        })
    }

    /// The per-request worker-thread cap applied to every
    /// [`Server::repair`]: `available_cores / pool workers` (at least 1).
    /// A tenant's configured `repair_threads` budget is clamped to this
    /// cap, so one tenant's repair cannot monopolize the machine while
    /// other tenants' requests run — snapshot reads are unaffected either
    /// way (they never need the pool), and the clamp never changes repair
    /// *results*, which are byte-identical at any thread count.
    pub fn repair_thread_cap(&self) -> usize {
        self.inner.repair_thread_cap
    }

    /// Creates a tenant serving `data` under `engine`, running the initial
    /// full detection on the pool, and publishes its generation-0 snapshot.
    ///
    /// Fails with [`ServeError::DuplicateTenant`] if the name is taken and
    /// propagates schema mismatches between `data` and the engine.
    pub fn create_tenant(
        &self,
        name: impl Into<String>,
        engine: Engine,
        data: Arc<Relation>,
    ) -> Result<Arc<TenantSnapshot>> {
        let name = name.into();
        // Reserve the name first so two concurrent creates of the same
        // tenant cannot both run the (expensive) initial detection.
        {
            let tenants = self.read_tenants();
            if tenants.contains_key(&name) {
                return Err(ServeError::DuplicateTenant(name));
            }
        }
        let batch = self.inner.batch;
        let max_inflight = self.inner.max_inflight;
        let tenant = self
            .inner
            .pool
            .submit(move || Tenant::open(engine, data, batch, max_inflight))?;
        self.register_tenant(name, tenant)
    }

    /// Creates a **disk-backed** tenant served from the store directory
    /// `dir`: an empty store is created on first use, and an existing one is
    /// recovered (WAL replay) and served as-is — this is also the restart
    /// path after a crash. The initial full detection runs on the pool and
    /// its report is published as generation 0.
    ///
    /// Every write to the tenant ([`Server::stream`]) is durable when the
    /// caller gets its snapshot back — see the durability contract on
    /// `cfd::store::ColumnStore`. Fails with
    /// [`ServeError::DuplicateTenant`] if the name is taken.
    pub fn create_tenant_on_disk(
        &self,
        name: impl Into<String>,
        engine: Engine,
        dir: impl AsRef<Path>,
    ) -> Result<Arc<TenantSnapshot>> {
        let name = name.into();
        {
            let tenants = self.read_tenants();
            if tenants.contains_key(&name) {
                return Err(ServeError::DuplicateTenant(name));
            }
        }
        let batch = self.inner.batch;
        let max_inflight = self.inner.max_inflight;
        let dir = dir.as_ref().to_path_buf();
        let tenant = self
            .inner
            .pool
            .submit(move || Tenant::open_from_dir(engine, &dir, batch, max_inflight))?;
        self.register_tenant(name, tenant)
    }

    fn register_tenant(&self, name: String, tenant: Tenant) -> Result<Arc<TenantSnapshot>> {
        let tenant = Arc::new(tenant);
        let snapshot = tenant.published();
        let mut tenants = self.write_tenants();
        if tenants.contains_key(&name) {
            return Err(ServeError::DuplicateTenant(name));
        }
        tenants.insert(name, tenant);
        Ok(snapshot)
    }

    /// Removes a tenant. In-flight requests holding its `Arc` finish
    /// normally against their snapshot; new requests get
    /// [`ServeError::UnknownTenant`].
    pub fn drop_tenant(&self, name: &str) -> Result<()> {
        match self.write_tenants().remove(name) {
            Some(_) => Ok(()),
            None => Err(ServeError::UnknownTenant(name.to_string())),
        }
    }

    /// The current tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_tenants().keys().cloned().collect();
        names.sort();
        names
    }

    /// The tenant's current published snapshot (relation + report +
    /// generation). Never blocks on writes in progress.
    pub fn snapshot(&self, tenant: &str) -> Result<Arc<TenantSnapshot>> {
        Ok(self.tenant(tenant)?.published())
    }

    /// The tenant's current full violation report — the incrementally
    /// maintained report of its published snapshot, byte-identical to a
    /// from-scratch detection of that instance. Served directly from the
    /// snapshot: never blocks on writes, costs one `Arc` clone.
    pub fn detect(&self, tenant: &str) -> Result<Arc<Violations>> {
        Ok(Arc::clone(self.tenant(tenant)?.published().report()))
    }

    /// From-scratch detection over the tenant's published snapshot with the
    /// engine's configured detector, executed on the pool — the expensive
    /// verification path ([`Server::detect`] must agree byte-for-byte).
    /// Sheds with [`ServeError::TenantBusy`] when the tenant is at its
    /// [`ServerConfig::max_inflight`] quota.
    pub fn detect_fresh(&self, name: &str) -> Result<Violations> {
        let tenant = self.tenant(name)?;
        let permit = tenant.admit(name)?;
        self.inner.pool.submit(move || {
            let _permit = permit;
            tenant.detect_from_scratch()
        })
    }

    /// Repairs the tenant's published snapshot on the pool. A pure read:
    /// the tenant's instance is not modified — the repaired relation is
    /// returned to the caller.
    /// The repair's worker fan-out is clamped by
    /// [`Server::repair_thread_cap`]; the clamp never changes the result.
    /// Sheds with [`ServeError::TenantBusy`] when the tenant is at its
    /// [`ServerConfig::max_inflight`] quota.
    pub fn repair(&self, name: &str, kind: RepairKind) -> Result<RepairResult> {
        let tenant = self.tenant(name)?;
        let permit = tenant.admit(name)?;
        let cap = self.inner.repair_thread_cap;
        self.inner.pool.submit(move || {
            let _permit = permit;
            tenant.repair(kind, cap)
        })
    }

    /// Streams write ops into a tenant, coalescing with concurrent writers
    /// into micro-batches (see [`ServerConfig`]), and returns the snapshot
    /// published by the flush containing these ops.
    /// Sheds with [`ServeError::TenantBusy`] when the tenant is at its
    /// [`ServerConfig::max_inflight`] quota (shed ops are **not** applied —
    /// resubmit the whole request).
    pub fn stream(&self, name: &str, ops: Vec<BatchOp>) -> Result<Arc<TenantSnapshot>> {
        let tenant = self.tenant(name)?;
        let permit = tenant.admit(name)?;
        self.inner.pool.submit(move || {
            let _permit = permit;
            tenant.stream(ops)
        })
    }

    /// Fault injection for tests and benches: runs a request against
    /// `tenant` that panics **while holding the tenant's writer lock** —
    /// the worst-case request fault. Returns the contained panic as
    /// `Err(`[`ServeError::Cfd`]`(`[`cfd::Error::WorkerPanicked`]`))`.
    ///
    /// The containment contract this exists to demonstrate: after this
    /// returns, the faulted tenant still serves its published snapshot, its
    /// next write recovers the poisoned lock transparently, and every other
    /// tenant is untouched.
    pub fn inject_worker_panic(&self, name: &str) -> Result<()> {
        let tenant = self.tenant(name)?;
        let permit = tenant.admit(name)?;
        self.inner.pool.submit(move || {
            // The permit must release even though this job panics: it rides
            // the closure's unwind, which is exactly what the admission
            // quota's leak-freedom contract requires.
            let _permit = permit;
            tenant.crash_holding_writer();
        })
    }

    /// Stops admitting requests, drains in-flight work, and joins the
    /// worker threads. Idempotent. Subsequent requests return
    /// [`ServeError::ShutDown`]; snapshot reads keep working (they never
    /// need the pool).
    pub fn shut_down(&self) {
        self.inner.pool.shut_down();
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>> {
        self.read_tenants()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    fn read_tenants(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Tenant>>> {
        // The map holds only Arcs; it is valid after any panic.
        self.inner
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn write_tenants(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<Tenant>>> {
        self.inner
            .tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, fig2_cfd_set};

    fn engine() -> Engine {
        Engine::builder()
            .rule_set(fig2_cfd_set())
            .build()
            .expect("fig2 rules are consistent")
    }

    fn server_with_tenant(name: &str) -> Server {
        let server = Server::with_config(ServerConfig {
            workers: 2,
            max_batch_ops: 64,
            max_batch_delay: Duration::ZERO,
            ..ServerConfig::default()
        })
        .expect("spawn server pool");
        server
            .create_tenant(name, engine(), Arc::new(cust_instance()))
            .expect("create tenant");
        server
    }

    #[test]
    fn lifecycle_create_list_drop() {
        let server = server_with_tenant("acme");
        assert_eq!(server.tenants(), vec!["acme".to_string()]);
        let dup = server
            .create_tenant("acme", engine(), Arc::new(cust_instance()))
            .unwrap_err();
        assert_eq!(dup, ServeError::DuplicateTenant("acme".into()));
        server
            .create_tenant("beta", engine(), Arc::new(cust_instance()))
            .unwrap();
        assert_eq!(
            server.tenants(),
            vec!["acme".to_string(), "beta".to_string()]
        );
        server.drop_tenant("acme").unwrap();
        assert_eq!(
            server.drop_tenant("acme").unwrap_err(),
            ServeError::UnknownTenant("acme".into())
        );
        assert_eq!(
            server.detect("acme").unwrap_err(),
            ServeError::UnknownTenant("acme".into())
        );
        assert_eq!(server.tenants(), vec!["beta".to_string()]);
    }

    #[test]
    fn detect_matches_fresh_detection() {
        let server = server_with_tenant("acme");
        let served = server.detect("acme").unwrap();
        let fresh = server.detect_fresh("acme").unwrap();
        assert_eq!(served.canonical_bytes(), fresh.canonical_bytes());
        assert!(!served.is_clean(), "cust instance has seeded violations");
    }

    #[test]
    fn stream_publishes_new_generations() {
        let server = server_with_tenant("acme");
        let row = cust_instance().to_tuples()[0].clone();
        let snap = server
            .stream("acme", vec![BatchOp::Insert(row.clone())])
            .unwrap();
        assert_eq!(snap.generation(), 1);
        let snap = server.stream("acme", vec![BatchOp::Delete(row)]).unwrap();
        assert_eq!(snap.generation(), 2);
        assert_eq!(snap.relation().len(), cust_instance().len());
        let fresh = server.detect_fresh("acme").unwrap();
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
    }

    #[test]
    fn an_injected_panic_is_contained_and_the_tenant_recovers() {
        let server = server_with_tenant("acme");
        let before = server.detect("acme").unwrap();
        let err = server.inject_worker_panic("acme").unwrap_err();
        assert!(err.is_worker_panic());
        // Readers: still served, unchanged.
        let after = server.detect("acme").unwrap();
        assert_eq!(before.canonical_bytes(), after.canonical_bytes());
        // Writers: the poisoned writer lock is recovered transparently.
        let row = cust_instance().to_tuples()[0].clone();
        let snap = server.stream("acme", vec![BatchOp::Insert(row)]).unwrap();
        assert_eq!(snap.generation(), 1);
        let fresh = server.detect_fresh("acme").unwrap();
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
    }

    #[test]
    fn a_tenant_at_its_quota_sheds_with_tenant_busy() {
        let server = Server::with_config(ServerConfig {
            workers: 2,
            max_batch_ops: 64,
            max_batch_delay: Duration::ZERO,
            max_inflight: 1,
        })
        .expect("spawn server pool");
        server
            .create_tenant("acme", engine(), Arc::new(cust_instance()))
            .expect("create tenant");
        // Occupy the tenant's single admission slot directly, then watch
        // every pool-executed request shed deterministically.
        let tenant = server.tenant("acme").unwrap();
        let permit = tenant.admit("acme").unwrap();
        let busy = ServeError::TenantBusy("acme".into());
        assert_eq!(server.detect_fresh("acme").unwrap_err(), busy);
        assert_eq!(
            server.repair("acme", RepairKind::EquivClass).unwrap_err(),
            busy
        );
        let row = cust_instance().to_tuples()[0].clone();
        assert_eq!(
            server
                .stream("acme", vec![BatchOp::Insert(row.clone())])
                .unwrap_err(),
            busy
        );
        // Shedding is not a fault: snapshot reads keep working throughout,
        // and releasing the slot restores full service.
        assert!(!server.detect("acme").unwrap().is_clean());
        drop(permit);
        let snap = server.stream("acme", vec![BatchOp::Insert(row)]).unwrap();
        assert_eq!(snap.generation(), 1);
        let fresh = server.detect_fresh("acme").unwrap();
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
    }

    #[test]
    fn a_contained_panic_releases_its_admission_slot() {
        let server = Server::with_config(ServerConfig {
            workers: 2,
            max_batch_ops: 64,
            max_batch_delay: Duration::ZERO,
            max_inflight: 1,
        })
        .expect("spawn server pool");
        server
            .create_tenant("acme", engine(), Arc::new(cust_instance()))
            .expect("create tenant");
        let err = server.inject_worker_panic("acme").unwrap_err();
        assert!(err.is_worker_panic());
        // The panicked request's permit was released by unwinding: the
        // single slot is free again.
        let fresh = server.detect_fresh("acme").unwrap();
        assert_eq!(
            server.detect("acme").unwrap().canonical_bytes(),
            fresh.canonical_bytes()
        );
    }

    #[test]
    fn disk_tenants_persist_across_drop_and_recreate() {
        let dir =
            std::env::temp_dir().join(format!("cfd-serve-server-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let server = server_with_tenant("other");
        server
            .create_tenant_on_disk("acme", engine(), &dir)
            .expect("create disk tenant");
        assert_eq!(
            server
                .create_tenant_on_disk("acme", engine(), &dir)
                .unwrap_err(),
            ServeError::DuplicateTenant("acme".into())
        );
        let ops: Vec<BatchOp> = cust_instance()
            .to_tuples()
            .into_iter()
            .map(BatchOp::Insert)
            .collect();
        let snap = server.stream("acme", ops).unwrap();
        assert_eq!(snap.relation().len(), cust_instance().len());
        assert!(!snap.report().is_clean());
        // Drop the tenant (closing its store) and re-create it from the
        // same directory: the committed data and its report survive.
        server.drop_tenant("acme").unwrap();
        let recovered = server
            .create_tenant_on_disk("acme", engine(), &dir)
            .expect("reopen disk tenant");
        assert_eq!(recovered.relation().len(), cust_instance().len());
        let fresh = server.detect_fresh("acme").unwrap();
        assert_eq!(
            recovered.report().canonical_bytes(),
            fresh.canonical_bytes()
        );
        server.drop_tenant("acme").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_stops_pool_requests_but_not_snapshot_reads() {
        let server = server_with_tenant("acme");
        server.shut_down();
        assert_eq!(
            server.stream("acme", Vec::new()).unwrap_err(),
            ServeError::ShutDown
        );
        assert!(server.detect_fresh("acme").is_err());
        // Snapshot reads bypass the pool entirely.
        assert!(!server.detect("acme").unwrap().is_clean());
        server.shut_down(); // idempotent
    }
}
