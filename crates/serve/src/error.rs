//! The serving-layer error type.

use std::fmt;

/// Convenient result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything a [`Server`](crate::Server) request can fail with.
///
/// Faults stay scoped to the request that hit them: an `Err` returned to one
/// caller never changes what any other caller observes — in particular
/// [`ServeError::Cfd`]`(`[`cfd::Error::WorkerPanicked`]`)` means *this*
/// request's worker panicked and was contained, not that the server (or even
/// the tenant) is down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// An error bubbled up from the CFD engine underneath (including
    /// [`cfd::Error::WorkerPanicked`] when a worker executing the request
    /// panicked and the panic was contained).
    Cfd(cfd::Error),
    /// The named tenant does not exist (never created, or dropped).
    UnknownTenant(String),
    /// A tenant with this name already exists.
    DuplicateTenant(String),
    /// The tenant is at its per-tenant admission limit
    /// ([`ServerConfig::max_inflight`](crate::ServerConfig::max_inflight)):
    /// that many pool-executed requests are already in flight for it.
    /// Load shedding, not a fault — the tenant is healthy; retry once some
    /// of its in-flight work drains. Snapshot reads are never shed (they
    /// bypass the pool).
    TenantBusy(String),
    /// The server is shutting down and no longer admits requests.
    ShutDown,
    /// The OS refused to spawn a worker thread while building the pool
    /// (resource exhaustion). Carries the OS error rendered as text so the
    /// variant stays `Clone + Eq`.
    Spawn(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Cfd(e) => write!(f, "engine error: {e}"),
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant `{name}`"),
            ServeError::DuplicateTenant(name) => write!(f, "tenant `{name}` already exists"),
            ServeError::TenantBusy(name) => write!(
                f,
                "tenant `{name}` is at its admission limit (too many requests in flight); \
                 retry after in-flight work drains"
            ),
            ServeError::ShutDown => write!(f, "server is shutting down"),
            ServeError::Spawn(os) => write!(f, "cannot spawn a serve worker thread: {os}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Cfd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cfd::Error> for ServeError {
    fn from(e: cfd::Error) -> Self {
        ServeError::Cfd(e)
    }
}

impl ServeError {
    /// Whether this error reports a contained worker panic.
    pub fn is_worker_panic(&self) -> bool {
        matches!(self, ServeError::Cfd(cfd::Error::WorkerPanicked))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_sources() {
        let panic: ServeError = cfd::Error::WorkerPanicked.into();
        assert!(panic.is_worker_panic());
        assert!(panic.to_string().contains("panicked"));
        assert!(panic.source().is_some());

        let unknown = ServeError::UnknownTenant("acme".into());
        assert!(unknown.to_string().contains("acme"));
        assert!(unknown.source().is_none());
        assert!(!unknown.is_worker_panic());

        let dup = ServeError::DuplicateTenant("acme".into());
        assert!(dup.to_string().contains("already exists"));

        let busy = ServeError::TenantBusy("acme".into());
        assert!(busy.to_string().contains("acme"));
        assert!(busy.to_string().contains("admission limit"));
        assert!(busy.source().is_none());
        assert!(!busy.is_worker_panic());

        assert!(ServeError::ShutDown.to_string().contains("shutting down"));

        let spawn = ServeError::Spawn("EAGAIN".into());
        assert!(spawn.to_string().contains("cannot spawn"));
        assert!(spawn.to_string().contains("EAGAIN"));
        assert!(spawn.source().is_none());
        assert!(!spawn.is_worker_panic());
    }
}
