//! The bounded worker pool every request is admitted on.
//!
//! N OS threads drain one shared job queue; a request is a closure plus a
//! response channel the submitting thread blocks on. The pool is the
//! admission control of the server: at most `workers` requests execute at
//! once, the rest queue in FIFO order — one tenant flooding the queue delays
//! others but can never *wedge* them, because:
//!
//! * every job body runs under [`std::panic::catch_unwind`], so a panicking
//!   request kills neither its worker thread (the pool never shrinks) nor
//!   the process — the submitter receives
//!   [`cfd::Error::WorkerPanicked`] instead;
//! * jobs never block on other *queued* jobs (the tenant layer's group
//!   commit guarantees a batch leader is always a running job), so the queue
//!   always drains.

use crate::error::{Result, ServeError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads draining one shared FIFO queue.
pub(crate) struct WorkerPool {
    /// `None` once shutdown has begun; dropping the sender is what lets the
    /// workers' `recv` loops terminate.
    tx: Mutex<Option<Sender<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` (≥ 1) threads. Fails with [`ServeError::Spawn`]
    /// when the OS refuses a thread; workers spawned before the failure are
    /// shut down cleanly by the returned pool's drop.
    pub fn new(workers: usize) -> Result<WorkerPool> {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("cfd-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .map_err(|e| ServeError::Spawn(e.to_string()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(WorkerPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
        })
    }

    /// Runs `f` on a pool worker, blocking the calling thread until the
    /// result is back. A panic inside `f` is contained on the worker and
    /// surfaces here as [`cfd::Error::WorkerPanicked`].
    pub fn submit<T, F>(&self, f: F) -> Result<T>
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T> + Send + 'static,
    {
        let (rtx, rrx) = channel::<Result<T>>();
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f))
                .unwrap_or(Err(ServeError::Cfd(cfd::Error::WorkerPanicked)));
            // A send failure means the submitter gave up (shutdown); the
            // result is simply dropped.
            let _ = rtx.send(result);
        });
        {
            let guard = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
            match guard.as_ref() {
                Some(tx) => tx.send(job).map_err(|_| ServeError::ShutDown)?,
                None => return Err(ServeError::ShutDown),
            }
        }
        // The job always sends exactly once (panics are caught above); the
        // only way the sender drops without sending is the job being dropped
        // unexecuted during shutdown.
        rrx.recv().unwrap_or(Err(ServeError::ShutDown))
    }

    /// Stops admitting jobs, drains the queue, and joins every worker.
    /// Idempotent; called by `Drop`.
    pub fn shut_down(&self) {
        let tx = self
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        drop(tx);
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            // A worker cannot panic (job bodies are caught), but a join
            // error must not poison shutdown either.
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shut_down();
    }
}

/// One worker: take the queue lock only long enough to dequeue, run the job
/// unlocked, exit when every sender is gone.
fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submits_run_and_return() {
        let pool = WorkerPool::new(2).unwrap();
        let out = pool.submit(|| Ok(21 * 2)).unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn spawn_failure_is_a_typed_error_not_a_panic() {
        // The error constructor itself: whatever the OS message, the
        // variant must render it and stay comparable/cloneable.
        let err = ServeError::Spawn("EAGAIN".into());
        assert_eq!(err.clone(), err);
        assert!(err.to_string().contains("cannot spawn"));
        assert!(err.to_string().contains("EAGAIN"));
        assert!(!err.is_worker_panic());
    }

    #[test]
    fn a_panicking_job_is_contained_and_the_pool_keeps_serving() {
        let pool = WorkerPool::new(1).unwrap();
        let err = pool.submit::<u32, _>(|| panic!("request bug")).unwrap_err();
        assert!(err.is_worker_panic());
        // The single worker survived the panic and still serves.
        for i in 0..8u32 {
            assert_eq!(pool.submit(move || Ok(i)).unwrap(), i);
        }
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = Arc::new(WorkerPool::new(3).unwrap());
        let results: Vec<u32> = std::thread::scope(|scope| {
            (0..16u32)
                .map(|i| {
                    let pool = Arc::clone(&pool);
                    scope.spawn(move || pool.submit(move || Ok(i * i)).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = results;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16u32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let pool = WorkerPool::new(2).unwrap();
        pool.shut_down();
        let err = pool.submit(|| Ok(())).unwrap_err();
        assert_eq!(err, ServeError::ShutDown);
        // Idempotent.
        pool.shut_down();
    }
}
