//! Recovery-protocol tests of [`ColumnStore`]: clean reopen, WAL replay
//! when the final checkpoint was skipped (simulated crash via
//! `std::mem::forget`), torn-tail truncation, and the stored-schema check.
//!
//! The process-kill variant (a child process `abort()`ed mid-stream) lives
//! in the root crate's `tests/store_backend.rs`; these tests cover the same
//! protocol in-process, where each step can be arranged precisely.

use cfd_datagen::cust::{cust_instance, cust_schema, fig2_cfd_set};
use cfd_detect::BatchOp;
use cfd_relation::{Relation, Value};
use cfd_store::{ColumnStore, StoreError, StoreOptions};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cfd-store-recovery-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_pool() -> StoreOptions {
    StoreOptions {
        pool_pages: 4,
        ..StoreOptions::default()
    }
}

fn insert_all(store: &mut ColumnStore, data: &Relation) {
    let ops: Vec<BatchOp> = data.to_tuples().into_iter().map(BatchOp::Insert).collect();
    store.apply_batch(&ops).expect("insert batch");
}

#[test]
fn data_and_report_survive_a_clean_reopen() {
    let dir = scratch_dir("clean");
    let cfds: Vec<_> = fig2_cfd_set().into_iter().collect();
    let before = {
        let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
        insert_all(&mut store, &cust_instance());
        store.detect(&cfds).unwrap()
        // Drop checkpoints: pages flushed, meta written, WAL truncated.
    };
    let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
    assert_eq!(store.committed_batches(), 1);
    assert_eq!(store.len(), cust_instance().len());
    assert_eq!(store.materialize().unwrap(), cust_instance());
    let after = store.detect(&cfds).unwrap();
    assert_eq!(before.canonical_bytes(), after.canonical_bytes());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_recovers_commits_after_a_skipped_checkpoint() {
    let dir = scratch_dir("replay");
    let data = cust_instance();
    {
        let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
        insert_all(&mut store, &data);
        // A tuple distinct from every existing row, so the delete can only
        // match the insert from the same batch (bag semantics remove *one*
        // matching live tuple).
        let mut cells = data.row(0).unwrap().to_values();
        cells[3] = Value::from("Zed");
        let extra = cfd_relation::Tuple::new(cells);
        store
            .apply_batch(&[BatchOp::Insert(extra.clone()), BatchOp::Delete(extra)])
            .expect("second batch");
        // Simulate a crash after the commit fsyncs: skip Drop's checkpoint,
        // so recovery must come entirely from meta + WAL replay.
        std::mem::forget(store);
    }
    let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
    assert_eq!(
        store.committed_batches(),
        2,
        "every batch that reported success is recovered"
    );
    assert_eq!(store.materialize().unwrap(), data);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cell_edits_survive_wal_replay() {
    let dir = scratch_dir("edits");
    let data = cust_instance();
    let edited = Value::from("99");
    {
        let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
        insert_all(&mut store, &data);
        store
            .set_cells(&[(0, 0, edited.clone()), (1, 0, edited.clone())])
            .expect("edit cells");
        std::mem::forget(store);
    }
    let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
    let recovered = store.materialize().unwrap();
    assert_eq!(recovered.row(0).unwrap().to_values()[0], edited);
    assert_eq!(recovered.row(1).unwrap().to_values()[0], edited);
    // Untouched cells are untouched.
    assert_eq!(
        recovered.row(2).unwrap().to_values(),
        data.row(2).unwrap().to_values()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_wal_tail_is_truncated_not_fatal() {
    use std::io::Write as _;
    let dir = scratch_dir("torn");
    let data = cust_instance();
    {
        let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
        insert_all(&mut store, &data);
        std::mem::forget(store);
    }
    // A record whose write was cut mid-way: a plausible length prefix with
    // too few payload bytes behind it.
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("wal.log"))
        .unwrap();
    wal.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad])
        .unwrap();
    wal.sync_all().unwrap();
    drop(wal);
    let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
    assert_eq!(store.committed_batches(), 1, "the valid prefix replays");
    assert_eq!(store.materialize().unwrap(), data);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopening_with_a_different_schema_is_rejected() {
    let dir = scratch_dir("schema");
    {
        let store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
        drop(store);
    }
    let other = cfd_relation::Schema::builder("other")
        .text("a")
        .text("b")
        .build();
    let err = ColumnStore::open_or_create(&dir, &other, tiny_pool()).unwrap_err();
    assert!(
        matches!(err, StoreError::SchemaMismatch { .. }),
        "got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_rejected_batch_leaves_the_store_untouched() {
    let dir = scratch_dir("atomic");
    let data = cust_instance();
    let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
    insert_all(&mut store, &data);
    let bad = cfd_relation::Tuple::nulls(2); // wrong arity
    let err = store
        .apply_batch(&[
            BatchOp::Insert(data.to_tuples()[0].clone()),
            BatchOp::Insert(bad),
        ])
        .unwrap_err();
    assert!(matches!(err, StoreError::Relation(_)), "got {err:?}");
    assert_eq!(store.committed_batches(), 1, "nothing was committed");
    assert_eq!(store.materialize().unwrap(), data);
    // A crash right now must agree: reopen sees only the good batch.
    std::mem::forget(store);
    let mut store = ColumnStore::open_or_create(&dir, &cust_schema(), tiny_pool()).unwrap();
    assert_eq!(store.committed_batches(), 1);
    assert_eq!(store.materialize().unwrap(), data);
    let _ = std::fs::remove_dir_all(&dir);
}
