//! Randomized differential test of the pager + buffer pool against a flat
//! in-memory mirror.
//!
//! A tiny pool (4 frames) over a page file many times that size forces
//! constant eviction and dirty-page writeback while a deterministic
//! xorshift stream issues tens of thousands of random cell reads and
//! writes. The invariants:
//!
//! * every read returns exactly what the unbounded mirror holds;
//! * the pool never holds more frames than its capacity
//!   (`peak_resident <= capacity`);
//! * after a flush, a **cold reopen** of the page file (fresh pager, fresh
//!   pool) still reads back the mirror — what the pool wrote back is what
//!   the file durably contains.

use cfd_store::{BufferPool, Pager, PAGE_CELLS};
use std::path::PathBuf;

/// Deterministic xorshift64* stream — the test needs no external RNG.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn scratch_file(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "cfd-store-pager-prop-{}-{}.pages",
        tag,
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn random_cell_traffic_matches_an_in_memory_mirror() {
    const PAGES: u64 = 64;
    const CAPACITY: usize = 4;
    const OPS: usize = 30_000;

    let path = scratch_file("traffic");
    let mut pager = Pager::open(&path).expect("open page file");
    let mut pool = BufferPool::new(CAPACITY);
    let mut mirror = vec![0u32; (PAGES as usize) * PAGE_CELLS];
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);

    for step in 0..OPS {
        let page = rng.below(PAGES);
        let offset = rng.below(PAGE_CELLS as u64) as usize;
        let flat = (page as usize) * PAGE_CELLS + offset;
        match rng.below(10) {
            // 60% writes: keep the dirty-frame population high.
            0..=5 => {
                let v = rng.next() as u32;
                pool.write_cell(&mut pager, page, offset, v)
                    .expect("write_cell");
                mirror[flat] = v;
            }
            // 30% point reads.
            6..=8 => {
                let got = pool.read_cell(&mut pager, page, offset).expect("read_cell");
                assert_eq!(got, mirror[flat], "cell ({page}, {offset}) at step {step}");
            }
            // 10% range reads of up to 64 cells.
            _ => {
                let len = (rng.below(64) + 1) as usize;
                let mut out = Vec::new();
                pool.read_cells(&mut pager, page, offset, len, &mut out)
                    .expect("read_cells");
                let end = (offset + len).min(PAGE_CELLS);
                let want = &mirror
                    [(page as usize) * PAGE_CELLS + offset..(page as usize) * PAGE_CELLS + end];
                assert_eq!(out, want, "range ({page}, {offset}+{len}) at step {step}");
            }
        }
        // Occasionally checkpoint (flush) or drop the cache entirely so the
        // stream also exercises cold re-reads of written-back pages.
        if step % 4096 == 4095 {
            pool.flush_all(&mut pager).expect("flush_all");
        }
        if step % 10_240 == 10_239 {
            pool.clear(&mut pager).expect("clear");
        }
    }

    let stats = pool.stats();
    assert_eq!(stats.capacity, CAPACITY);
    assert!(
        stats.peak_resident <= CAPACITY,
        "peak_resident {} exceeded capacity {CAPACITY}",
        stats.peak_resident
    );
    assert!(
        stats.evictions > 0,
        "a 4-frame pool over 64 pages must evict"
    );
    assert!(stats.writebacks > 0, "dirty evictions must write back");

    // Full sweep through the (still tiny) pool: every cell matches.
    for page in 0..PAGES {
        for offset in 0..PAGE_CELLS {
            let got = pool
                .read_cell(&mut pager, page, offset)
                .expect("sweep read");
            assert_eq!(got, mirror[(page as usize) * PAGE_CELLS + offset]);
        }
    }

    // Durability: flush, reopen the file cold, sweep again.
    pool.flush_all(&mut pager).expect("final flush");
    pager.sync().expect("sync");
    drop(pager);
    drop(pool);
    let mut pager = Pager::open(&path).expect("reopen page file");
    let mut pool = BufferPool::new(CAPACITY);
    for page in 0..PAGES {
        let mut out = Vec::new();
        pool.read_cells(&mut pager, page, 0, PAGE_CELLS, &mut out)
            .expect("cold read");
        let base = (page as usize) * PAGE_CELLS;
        assert_eq!(out, &mirror[base..base + PAGE_CELLS], "cold page {page}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pages_past_the_end_of_file_read_as_zeros() {
    let path = scratch_file("zeros");
    let mut pager = Pager::open(&path).expect("open page file");
    let mut pool = BufferPool::new(2);
    // Nothing was ever written: any page reads back all-zero.
    for page in [0u64, 7, 1000] {
        let got = pool.read_cell(&mut pager, page, 17).expect("read");
        assert_eq!(got, 0);
    }
    let _ = std::fs::remove_file(&path);
}
