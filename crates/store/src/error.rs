//! The typed error surface of the storage layer.
//!
//! Every fallible store operation returns [`StoreError`] — I/O failures are
//! captured with the operation and path that raised them (the underlying
//! `std::io::Error` is flattened to its message so the error stays `Clone`
//! and comparable, like every other error type of the workspace), and
//! on-disk corruption is reported as the typed [`StoreError::Corrupt`]
//! variant rather than a panic: a store must survive torn writes, partial
//! records and stray bytes by *reporting*, never by unwrapping.

use cfd_relation::RelationError;
use std::fmt;
use std::path::Path;

/// Convenient result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// The error type of the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure, tagged with the failed operation
    /// and the file it targeted.
    Io {
        /// What the store was doing (`"open"`, `"read"`, `"write"`,
        /// `"sync"`, `"rename"`, …).
        op: &'static str,
        /// The file or directory the operation targeted.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// On-disk state failed validation (bad magic, CRC mismatch beyond the
    /// recoverable torn tail, impossible counters, dictionary ids out of
    /// range).
    Corrupt {
        /// The offending file.
        path: String,
        /// What exactly failed to validate.
        detail: String,
    },
    /// The store directory holds data for a different schema than the one
    /// it is being opened against.
    SchemaMismatch {
        /// Schema name recorded in the store's metadata.
        stored: String,
        /// Schema name the caller offered.
        offered: String,
    },
    /// The buffer pool cannot make room: every resident frame is pinned.
    /// Seen only under a pool smaller than the working set of one access —
    /// configure at least a handful of pages.
    PoolExhausted {
        /// The configured pool capacity, in pages.
        capacity: usize,
    },
    /// A batch or edit referenced a row or attribute the store does not
    /// have, or carried the wrong arity. Raised by upfront validation,
    /// **before** any byte is logged or written — rejected batches leave
    /// the store untouched.
    InvalidOp {
        /// What was out of range or malformed.
        detail: String,
    },
    /// An error bubbled up from the relational substrate while
    /// materializing rows.
    Relation(RelationError),
}

impl StoreError {
    /// Wraps an `std::io::Error` with the operation and path that raised it.
    pub(crate) fn io(op: &'static str, path: &Path, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }

    /// A corruption finding on `path`.
    pub(crate) fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "store io error: {op} {path}: {message}")
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corruption in {path}: {detail}")
            }
            StoreError::SchemaMismatch { stored, offered } => write!(
                f,
                "store schema mismatch: directory holds `{stored}`, opened with `{offered}`"
            ),
            StoreError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frame(s) pinned")
            }
            StoreError::InvalidOp { detail } => write!(f, "invalid store op: {detail}"),
            StoreError::Relation(e) => write!(f, "store relation error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for StoreError {
    fn from(e: RelationError) -> Self {
        StoreError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_operation_and_path() {
        let e = StoreError::io(
            "read",
            Path::new("/tmp/x/pages.dat"),
            &std::io::Error::other("boom"),
        );
        let text = e.to_string();
        assert!(text.contains("read"));
        assert!(text.contains("pages.dat"));
        assert!(text.contains("boom"));
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn variants_render_their_payloads() {
        let c = StoreError::corrupt(Path::new("wal.log"), "crc mismatch");
        assert!(c.to_string().contains("crc mismatch"));
        let s = StoreError::SchemaMismatch {
            stored: "cust".into(),
            offered: "tax".into(),
        };
        assert!(s.to_string().contains("cust"));
        assert!(s.to_string().contains("tax"));
        let p = StoreError::PoolExhausted { capacity: 4 };
        assert!(p.to_string().contains('4'));
        let i = StoreError::InvalidOp {
            detail: "arity 3 != 7".into(),
        };
        assert!(i.to_string().contains("arity"));
        let r: StoreError = RelationError::Parse("bad".into()).into();
        assert!(matches!(r, StoreError::Relation(_)));
        use std::error::Error as _;
        assert!(r.source().is_some());
        assert!(p.source().is_none());
    }
}
