//! The bounded buffer pool between the store and its pager.
//!
//! Every page access goes through here: a fixed number of in-memory frames
//! cache decoded pages, pinned frames are immune to eviction, and dirty
//! frames are written back to the [`Pager`] when evicted or flushed. The
//! pool is the store's **memory ceiling** — scans over instances far larger
//! than the pool complete with at most `capacity` resident pages, and
//! [`PoolStats::peak_resident`] proves it (the out-of-core acceptance test
//! asserts `peak_resident <= capacity`).
//!
//! Eviction is LRU-ish: a monotone access tick per frame, the unpinned
//! frame with the smallest tick goes first. Exact LRU is not a goal — the
//! tick order is only consulted on misses with a full pool.

use crate::error::{Result, StoreError};
use crate::pager::{Pager, PAGE_CELLS};
use std::collections::HashMap;

/// Accounting counters of a [`BufferPool`]. Monotone over the pool's life
/// (except `resident`, the current page count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Configured capacity, in pages.
    pub capacity: usize,
    /// Pages resident right now.
    pub resident: usize,
    /// The largest `resident` ever observed — bounded by `capacity` by
    /// construction, and the number the out-of-core tests assert on.
    pub peak_resident: usize,
    /// Accesses served from a resident frame.
    pub hits: u64,
    /// Accesses that had to load the page from the pager.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back (on eviction or flush).
    pub writebacks: u64,
}

#[derive(Debug)]
struct Frame {
    cells: Vec<u32>,
    dirty: bool,
    pins: u32,
    tick: u64,
}

/// A bounded page cache with pin/unpin, LRU-ish eviction and dirty-page
/// writeback.
#[derive(Debug)]
pub struct BufferPool {
    frames: HashMap<u64, Frame>,
    capacity: usize,
    tick: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of `capacity` page frames (clamped to at least 2 — one page
    /// being read plus one being written is the minimum working set).
    pub fn new(capacity: usize) -> BufferPool {
        let capacity = capacity.max(2);
        BufferPool {
            frames: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: PoolStats {
                capacity,
                ..PoolStats::default()
            },
        }
    }

    /// Current accounting counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Pins page `id`, loading it (and evicting, if needed) first. A pinned
    /// frame cannot be evicted until [`BufferPool::unpin`] balances the pin.
    pub fn pin(&mut self, pager: &mut Pager, id: u64) -> Result<()> {
        self.touch(pager, id)?;
        if let Some(f) = self.frames.get_mut(&id) {
            f.pins += 1;
        }
        Ok(())
    }

    /// Releases one pin of page `id`. Unbalanced unpins are ignored.
    pub fn unpin(&mut self, id: u64) {
        if let Some(f) = self.frames.get_mut(&id) {
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Reads the cells `range` of page `id`, appending them to `out`.
    pub fn read_cells(
        &mut self,
        pager: &mut Pager,
        id: u64,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        self.touch(pager, id)?;
        let f = self.resident(id)?;
        let end = (start + len).min(PAGE_CELLS);
        out.extend_from_slice(&f.cells[start.min(PAGE_CELLS)..end]);
        Ok(())
    }

    /// Reads one cell of page `id`.
    pub fn read_cell(&mut self, pager: &mut Pager, id: u64, offset: usize) -> Result<u32> {
        self.touch(pager, id)?;
        let f = self.resident(id)?;
        f.cells
            .get(offset)
            .copied()
            .ok_or_else(|| StoreError::InvalidOp {
                detail: format!("cell offset {offset} out of page bounds"),
            })
    }

    /// Writes one cell of page `id`, marking the frame dirty.
    pub fn write_cell(&mut self, pager: &mut Pager, id: u64, offset: usize, v: u32) -> Result<()> {
        self.touch(pager, id)?;
        let f = self.frames.get_mut(&id).ok_or(StoreError::PoolExhausted {
            capacity: self.capacity,
        })?;
        let cell = f
            .cells
            .get_mut(offset)
            .ok_or_else(|| StoreError::InvalidOp {
                detail: format!("cell offset {offset} out of page bounds"),
            })?;
        *cell = v;
        f.dirty = true;
        Ok(())
    }

    /// Writes every dirty frame back to the pager (frames stay resident and
    /// become clean). Part of a checkpoint.
    pub fn flush_all(&mut self, pager: &mut Pager) -> Result<()> {
        let mut dirty: Vec<u64> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        for id in dirty {
            if let Some(f) = self.frames.get_mut(&id) {
                pager.write_page(id, &f.cells)?;
                f.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Drops every clean frame and writes back + drops every dirty one —
    /// used by tests to force cold reads.
    pub fn clear(&mut self, pager: &mut Pager) -> Result<()> {
        self.flush_all(pager)?;
        self.frames.clear();
        self.stats.resident = 0;
        Ok(())
    }

    /// Ensures page `id` is resident and bumps its access tick.
    fn touch(&mut self, pager: &mut Pager, id: u64) -> Result<()> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(f) = self.frames.get_mut(&id) {
            f.tick = tick;
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        if self.frames.len() >= self.capacity {
            self.evict_one(pager)?;
        }
        let mut cells = vec![0u32; PAGE_CELLS];
        pager.read_page(id, &mut cells)?;
        self.frames.insert(
            id,
            Frame {
                cells,
                dirty: false,
                pins: 0,
                tick,
            },
        );
        self.stats.resident = self.frames.len();
        self.stats.peak_resident = self.stats.peak_resident.max(self.stats.resident);
        Ok(())
    }

    /// Evicts the least-recently-used unpinned frame, writing it back first
    /// when dirty.
    fn evict_one(&mut self, pager: &mut Pager) -> Result<()> {
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.tick)
            .map(|(&id, _)| id)
            .ok_or(StoreError::PoolExhausted {
                capacity: self.capacity,
            })?;
        if let Some(f) = self.frames.remove(&victim) {
            if f.dirty {
                pager.write_page(victim, &f.cells)?;
                self.stats.writebacks += 1;
            }
            self.stats.evictions += 1;
        }
        self.stats.resident = self.frames.len();
        Ok(())
    }

    fn resident(&self, id: u64) -> Result<&Frame> {
        self.frames.get(&id).ok_or(StoreError::PoolExhausted {
            capacity: self.capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_pager(name: &str) -> (Pager, PathBuf) {
        let dir = std::env::temp_dir().join(format!("cfd-pool-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        (Pager::open(&dir.join("pages.dat")).unwrap(), dir)
    }

    #[test]
    fn residency_never_exceeds_capacity() {
        let (mut pager, dir) = tmp_pager("cap");
        let mut pool = BufferPool::new(3);
        for id in 0..20u64 {
            pool.write_cell(&mut pager, id, 0, id as u32 + 1).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.capacity, 3);
        assert!(s.resident <= 3);
        assert!(s.peak_resident <= 3);
        assert_eq!(s.evictions, 17);
        assert!(s.writebacks >= 17, "evicted dirty pages were written back");
        // Every page reads back what was written, through evictions.
        for id in 0..20u64 {
            assert_eq!(pool.read_cell(&mut pager, id, 0).unwrap(), id as u32 + 1);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let (mut pager, dir) = tmp_pager("pin");
        let mut pool = BufferPool::new(2);
        pool.write_cell(&mut pager, 0, 5, 42).unwrap();
        pool.pin(&mut pager, 0).unwrap();
        // Storm of other pages: page 0 must stay resident (pinned).
        for id in 1..10u64 {
            pool.write_cell(&mut pager, id, 0, id as u32).unwrap();
        }
        let before = pool.stats().hits;
        assert_eq!(pool.read_cell(&mut pager, 0, 5).unwrap(), 42);
        assert_eq!(pool.stats().hits, before + 1, "pinned page still cached");
        pool.unpin(0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let (mut pager, dir) = tmp_pager("exhaust");
        let mut pool = BufferPool::new(2);
        pool.pin(&mut pager, 0).unwrap();
        pool.pin(&mut pager, 1).unwrap();
        let err = pool.read_cell(&mut pager, 2, 0).unwrap_err();
        assert_eq!(err, StoreError::PoolExhausted { capacity: 2 });
        pool.unpin(0);
        assert!(pool.read_cell(&mut pager, 2, 0).is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn flush_writes_dirty_frames_and_keeps_them_resident() {
        let (mut pager, dir) = tmp_pager("flush");
        let mut pool = BufferPool::new(4);
        pool.write_cell(&mut pager, 0, 0, 9).unwrap();
        pool.write_cell(&mut pager, 1, 1, 8).unwrap();
        pool.flush_all(&mut pager).unwrap();
        assert_eq!(pool.stats().writebacks, 2);
        // Second flush: nothing dirty.
        pool.flush_all(&mut pager).unwrap();
        assert_eq!(pool.stats().writebacks, 2);
        // The pager has the bytes even without going through the pool.
        let mut cells = vec![0u32; PAGE_CELLS];
        pager.read_page(0, &mut cells).unwrap();
        assert_eq!(cells[0], 9);
        let _ = std::fs::remove_dir_all(dir);
    }
}
