//! The streaming violation scan over a [`ColumnStore`].
//!
//! Replicates the semantics of the in-memory detector's row-hash scan
//! (`detect_rows_rowhash` in `cfd-detect`) one column chunk at a time:
//! per chunk, the LHS/RHS column pages are read through the buffer pool
//! into scratch vectors, cells are translated store id → runtime id, and
//! the same `QC`/`QV` group logic runs per live slot. Page memory is
//! therefore bounded by the pool while the algorithmic state (one group
//! entry per distinct LHS key) is the same as the in-memory path's.
//!
//! Because [`Violations`] is a pair of ordered sets, scan order cannot
//! influence the report — the result is **byte-identical**
//! ([`Violations::canonical_bytes`]) to detecting over
//! [`ColumnStore::materialize`]'d data, which the differential tests pin.

use crate::error::Result;
use crate::pager::PAGE_CELLS;
use crate::store::ColumnStore;
use cfd_core::Cfd;
use cfd_detect::Violations;
use cfd_relation::ValueId;
use std::collections::HashMap;

/// Per-LHS-key state, mirroring the in-memory scan's fused verdict +
/// distinct-`Y` tracking.
enum GroupState {
    /// No pattern row matches this LHS key — `QV` never applies.
    Unmatched,
    /// Matched; every row so far shares this one `Y` projection.
    OneY(Vec<ValueId>),
    /// Matched; at least two distinct `Y` projections seen — a violation.
    ManyY,
}

/// Scans the whole store for violations of one CFD.
pub(crate) fn scan_store(store: &mut ColumnStore, cfd: &Cfd) -> Result<Violations> {
    let lhs: Vec<u32> = cfd.lhs().iter().map(|a| a.index() as u32).collect();
    let rhs: Vec<u32> = cfd.rhs().iter().map(|a| a.index() as u32).collect();
    let mut out = Violations::new();
    let mut groups: HashMap<Vec<ValueId>, GroupState> = HashMap::new();
    let mut qc_slots: Vec<u64> = Vec::new();
    let mut lhs_cols: Vec<Vec<u32>> = vec![Vec::new(); lhs.len()];
    let mut rhs_cols: Vec<Vec<u32>> = vec![Vec::new(); rhs.len()];
    let mut x_scratch: Vec<ValueId> = Vec::with_capacity(lhs.len());
    let mut y_scratch: Vec<ValueId> = Vec::with_capacity(rhs.len());

    let slots = store.slots();
    let chunks = slots.div_ceil(PAGE_CELLS as u64);
    for chunk in 0..chunks {
        for (k, &attr) in lhs.iter().enumerate() {
            store.read_chunk(chunk, attr, &mut lhs_cols[k])?;
        }
        for (k, &attr) in rhs.iter().enumerate() {
            store.read_chunk(chunk, attr, &mut rhs_cols[k])?;
        }
        let base = chunk * PAGE_CELLS as u64;
        let end = (base + PAGE_CELLS as u64).min(slots);
        for slot in base..end {
            if store.is_dead(slot) {
                continue;
            }
            let off = (slot - base) as usize;
            x_scratch.clear();
            for col in &lhs_cols {
                x_scratch.push(store.translate(col[off])?);
            }
            y_scratch.clear();
            for col in &rhs_cols {
                y_scratch.push(store.translate(col[off])?);
            }
            // QC: matches a pattern on X but contradicts a constant on Y.
            for pattern in cfd.tableau().iter() {
                if pattern.lhs_matches_ids(&x_scratch) && !pattern.rhs_matches_ids(&y_scratch) {
                    qc_slots.push(slot);
                    break;
                }
            }
            // QV: group by X among pattern-matched keys, compare distinct Y.
            match groups.get_mut(x_scratch.as_slice()) {
                Some(state) => {
                    if let GroupState::OneY(first) = state {
                        if *first != y_scratch {
                            *state = GroupState::ManyY;
                        }
                    }
                }
                None => {
                    let matched = cfd.tableau().iter().any(|p| p.lhs_matches_ids(&x_scratch));
                    let state = if matched {
                        GroupState::OneY(y_scratch.clone())
                    } else {
                        GroupState::Unmatched
                    };
                    groups.insert(x_scratch.clone(), state);
                }
            }
        }
    }
    for (key, state) in groups {
        if matches!(state, GroupState::ManyY) {
            out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
        }
    }
    // Post-pass: materialize the few QC-violating tuples with point reads.
    let arity = store.schema().arity();
    for slot in qc_slots {
        let mut values = Vec::with_capacity(arity);
        for attr in 0..arity {
            values.push(store.read_id(slot, attr as u32)?.resolve().clone());
        }
        out.add_constant_violation(values);
    }
    Ok(out)
}
