//! [`ColumnStore`]: the disk-backed columnar instance.
//!
//! # Layout of a store directory
//!
//! | file        | contents |
//! |-------------|----------|
//! | `pages.dat` | fixed-size pages of `u32` store-id cells ([`Pager`]) |
//! | `dict.dat`  | append-only value dictionary ([`Dict`](crate::dict::Dict)) |
//! | `wal.log`   | commit records since the last checkpoint ([`Wal`](crate::wal::Wal)) |
//! | `meta.dat`  | one CRC-framed checkpoint record (schema, slot counts, tombstones) |
//!
//! Columns live in **chunk runs**: the cells of attribute `a` for slots
//! `[c·1024, (c+1)·1024)` occupy page `c · arity + a`, so any column chunk
//! is one computed page and columns grow in lockstep without a directory.
//!
//! # Commit protocol (WAL-before-apply)
//!
//! [`ColumnStore::apply_batch`] and [`ColumnStore::set_cells`]:
//!
//! 1. validate every op up front — a rejected batch mutates **nothing**;
//! 2. register all new values in the dictionary and fsync it;
//! 3. append one commit record to the WAL and fsync it — *the commit
//!    point*, one fsync per (group-committed) batch;
//! 4. apply the ops to pages through the buffer pool (no fsync — eviction
//!    writebacks and the next checkpoint carry them to disk).
//!
//! A crash after step 3 loses nothing: open replays the WAL, rewriting
//! every cell the batch touched. A crash before step 3 loses exactly the
//! batches that never reported success (a torn tail record is truncated).
//! Page writes from step 4 that reached disk for an *uncommitted* batch are
//! harmless — its slots lie at or past the durable slot watermark and the
//! replayed tail rewrites everything below it.
//!
//! # Checkpoints
//!
//! When the WAL exceeds [`StoreOptions::wal_checkpoint_bytes`] (and on
//! drop), the store checkpoints: dictionary fsync → dirty-page flush →
//! data-file fsync → atomic `meta.dat` replace (tmp + rename + directory
//! fsync) → WAL truncate. Recovery always ends with a checkpoint, so a
//! reopened store starts with an empty log.

use crate::dict::Dict;
use crate::encode::{frame, put_str, put_u32, put_u64, put_value, scan_frames, take_value, Reader};
use crate::error::{Result, StoreError};
use crate::pager::{Pager, PAGE_CELLS};
use crate::pool::{BufferPool, PoolStats};
use crate::scan::scan_store;
use crate::wal::{StoreOp, Wal};
use cfd_core::Cfd;
use cfd_detect::{BatchOp, Violations};
use cfd_relation::{AttrType, Domain, Relation, RelationError, Schema, Value, ValueId};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const META_MAGIC: u32 = 0x4346_4453; // "CFDS"
const META_VERSION: u32 = 1;

/// Tuning knobs of a [`ColumnStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Buffer-pool capacity in pages (clamped to at least 2). The store's
    /// page memory never exceeds this — out-of-core scans hold
    /// `peak_resident <= pool_pages`.
    pub pool_pages: usize,
    /// WAL size that triggers a checkpoint after a commit.
    pub wal_checkpoint_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            pool_pages: 256,
            wal_checkpoint_bytes: 4 << 20,
        }
    }
}

/// A durable, bounded-memory columnar store for one relation.
///
/// # Durability contract
///
/// * [`ColumnStore::apply_batch`] and [`ColumnStore::set_cells`] return
///   only after their commit record is fsynced to the WAL: a batch that
///   reported success is replayed verbatim by any later
///   [`ColumnStore::open_or_create`], whatever the process did afterwards (crash,
///   `abort()`, power cut between fsyncs).
/// * Both are **failure-atomic**: a batch rejected by validation leaves
///   the store (disk and memory) exactly as it was.
/// * Detection over a recovered store is byte-identical
///   ([`Violations::canonical_bytes`]) to detection over a store that
///   applied the same committed batches without crashing.
/// * Batches durable at the moment of a crash = exactly those counted by
///   [`ColumnStore::committed_batches`] after recovery, a prefix of the
///   apply order.
pub struct ColumnStore {
    dir: PathBuf,
    schema: Schema,
    arity: usize,
    pager: Pager,
    pool: BufferPool,
    dict: Dict,
    wal: Wal,
    /// Physical slots ever allocated (live + tombstoned).
    slots: u64,
    /// Tombstoned slots, ordered for deterministic iteration.
    dead: BTreeSet<u64>,
    /// Committed batches so far == next WAL sequence number.
    committed: u64,
    wal_checkpoint_bytes: u64,
}

impl std::fmt::Debug for ColumnStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnStore")
            .field("dir", &self.dir)
            .field("schema", &self.schema.name())
            .field("slots", &self.slots)
            .field("dead", &self.dead.len())
            .field("committed", &self.committed)
            .finish_non_exhaustive()
    }
}

impl ColumnStore {
    /// Opens the store at `dir`, creating an empty one when no `meta.dat`
    /// exists yet. An existing store's persisted schema must equal the
    /// offered one ([`StoreError::SchemaMismatch`] otherwise). Opening
    /// replays any WAL tail and finishes with a checkpoint, so recovery is
    /// complete before this returns.
    pub fn open_or_create(dir: &Path, schema: &Schema, opts: StoreOptions) -> Result<ColumnStore> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("mkdir", dir, &e))?;
        let meta_path = dir.join("meta.dat");
        let meta = if meta_path.exists() {
            let stored = read_meta(&meta_path)?;
            if stored.schema != *schema {
                return Err(StoreError::SchemaMismatch {
                    stored: describe_schema(&stored.schema),
                    offered: describe_schema(schema),
                });
            }
            stored
        } else {
            let meta = Meta {
                schema: schema.clone(),
                slots: 0,
                committed: 0,
                dead: BTreeSet::new(),
            };
            write_meta(dir, &meta_path, &meta)?;
            meta
        };
        let pager = Pager::open(&dir.join("pages.dat"))?;
        let dict = Dict::open(&dir.join("dict.dat"))?;
        let (wal, tail) = Wal::open(&dir.join("wal.log"))?;
        let mut store = ColumnStore {
            dir: dir.to_path_buf(),
            arity: meta.schema.arity(),
            schema: meta.schema,
            pager,
            pool: BufferPool::new(opts.pool_pages),
            dict,
            wal,
            slots: meta.slots,
            dead: meta.dead,
            committed: meta.committed,
            wal_checkpoint_bytes: opts.wal_checkpoint_bytes,
        };
        let replayed = !tail.is_empty();
        for (seq, ops) in tail {
            if seq != store.committed {
                return Err(StoreError::corrupt(
                    &store.dir.join("wal.log"),
                    format!(
                        "commit sequence gap: expected {}, found {seq}",
                        store.committed
                    ),
                ));
            }
            store.apply_ops(&ops)?;
            store.committed += 1;
        }
        if replayed {
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// The stored schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live tuples (slots minus tombstones).
    pub fn len(&self) -> usize {
        (self.slots - self.dead.len() as u64) as usize
    }

    /// `true` when the store holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical slots ever allocated, including tombstoned ones.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Batches durably committed so far — after recovery, exactly the
    /// prefix of applied batches whose `apply_batch`/`set_cells` call
    /// reported success before the crash.
    pub fn committed_batches(&self) -> u64 {
        self.committed
    }

    /// Buffer-pool accounting — `peak_resident` is the store's page-memory
    /// high-water mark.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The physical slot of each live row, in live-row order. Index `r` of
    /// the returned vector is the slot backing row `r` of
    /// [`ColumnStore::materialize`]'s relation — the mapping a repair
    /// commit uses to turn row edits into [`ColumnStore::set_cells`] ops.
    pub fn live_slots(&self) -> Vec<u64> {
        let mut dead = self.dead.iter().copied().peekable();
        let mut out = Vec::with_capacity(self.len());
        for slot in 0..self.slots {
            if dead.peek() == Some(&slot) {
                dead.next();
                continue;
            }
            out.push(slot);
        }
        out
    }

    /// Durably applies one batch of inserts/deletes. See the type-level
    /// durability contract; group commit makes this one WAL fsync
    /// regardless of the batch size.
    pub fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<()> {
        let mut store_ops = Vec::with_capacity(ops.len());
        for op in ops {
            let tuple = match op {
                BatchOp::Insert(t) | BatchOp::Delete(t) => t,
            };
            // Same error the in-memory stream path raises, so a session is
            // backend-transparent even in how it rejects a malformed batch.
            if tuple.arity() != self.arity {
                return Err(StoreError::Relation(RelationError::ArityMismatch {
                    expected: self.arity,
                    got: tuple.arity(),
                }));
            }
            store_ops.push(match op {
                BatchOp::Insert(t) => StoreOp::Insert(t.to_values()),
                BatchOp::Delete(t) => StoreOp::Delete(t.to_values()),
            });
        }
        self.commit(&store_ops)
    }

    /// Durably overwrites cells of live slots — the logged form of a
    /// repair's edits, committed as one batch (one WAL fsync).
    pub fn set_cells(&mut self, edits: &[(u64, u32, Value)]) -> Result<()> {
        let mut store_ops = Vec::with_capacity(edits.len());
        for &(slot, attr, ref value) in edits {
            if slot >= self.slots || self.dead.contains(&slot) {
                return Err(StoreError::InvalidOp {
                    detail: format!("set_cells targets slot {slot}, which is not live"),
                });
            }
            if attr as usize >= self.arity {
                return Err(StoreError::InvalidOp {
                    detail: format!("set_cells attr {attr} out of arity {}", self.arity),
                });
            }
            store_ops.push(StoreOp::SetCell {
                slot,
                attr,
                value: value.clone(),
            });
        }
        self.commit(&store_ops)
    }

    /// Detects all violations of `cfds` with a streaming, chunk-at-a-time
    /// scan whose page memory is bounded by the pool. The report is
    /// byte-identical to detection over [`ColumnStore::materialize`]'d
    /// data (reports are ordered sets, so scan order is immaterial).
    pub fn detect(&mut self, cfds: &[Cfd]) -> Result<Violations> {
        let mut out = Violations::new();
        for cfd in cfds {
            out.merge(scan_store(self, cfd)?);
        }
        Ok(out)
    }

    /// Materializes the live tuples as an in-memory [`Relation`] in
    /// live-slot order (the order [`ColumnStore::live_slots`] documents).
    pub fn materialize(&mut self) -> Result<Relation> {
        let mut rel = Relation::with_capacity(self.schema.clone(), self.len());
        let mut row = vec![ValueId::of(&Value::Null); self.arity];
        for slot in 0..self.slots {
            if self.dead.contains(&slot) {
                continue;
            }
            for (attr, cell) in row.iter_mut().enumerate() {
                *cell = self.read_id(slot, attr as u32)?;
            }
            rel.push_ids(&row)?;
        }
        Ok(rel)
    }

    /// Flushes everything to disk and empties the WAL. Called
    /// automatically when the WAL passes its size threshold, at the end of
    /// recovery, and on drop.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.dict.sync()?;
        self.pool.flush_all(&mut self.pager)?;
        self.pager.sync()?;
        let meta = Meta {
            schema: self.schema.clone(),
            slots: self.slots,
            committed: self.committed,
            dead: self.dead.clone(),
        };
        write_meta(&self.dir, &self.dir.join("meta.dat"), &meta)?;
        self.wal.truncate()
    }

    /// Drops every cached page (flushing dirty ones) so the next scan
    /// reads cold from disk — used by benchmarks and tests.
    pub fn drop_page_cache(&mut self) -> Result<()> {
        self.pool.clear(&mut self.pager)
    }

    /// The validated-ops half of the commit protocol: dictionary fsync,
    /// WAL fsync (commit point), page apply, checkpoint when due.
    fn commit(&mut self, ops: &[StoreOp]) -> Result<()> {
        for op in ops {
            match op {
                StoreOp::Insert(values) => {
                    for v in values {
                        self.dict.store_id(ValueId::of(v))?;
                    }
                }
                StoreOp::SetCell { value, .. } => {
                    self.dict.store_id(ValueId::of(value))?;
                }
                StoreOp::Delete(_) => {}
            }
        }
        self.dict.sync()?;
        self.wal.append_commit(self.committed, ops)?;
        self.apply_ops(ops)?;
        self.committed += 1;
        if self.wal.size() > self.wal_checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Applies already-committed ops to pages (both the live path after a
    /// WAL append and the replay path during recovery run exactly this).
    fn apply_ops(&mut self, ops: &[StoreOp]) -> Result<()> {
        for op in ops {
            match op {
                StoreOp::Insert(values) => {
                    if values.len() != self.arity {
                        return Err(StoreError::corrupt(
                            &self.dir.join("wal.log"),
                            format!(
                                "insert arity {} does not match schema arity {}",
                                values.len(),
                                self.arity
                            ),
                        ));
                    }
                    let slot = self.slots;
                    for (attr, v) in values.iter().enumerate() {
                        let sid = self.dict.store_id(ValueId::of(v))?;
                        self.write_sid(slot, attr as u32, sid)?;
                    }
                    self.slots += 1;
                }
                StoreOp::Delete(values) => {
                    if let Some(slot) = self.find_live(values)? {
                        self.dead.insert(slot);
                    }
                }
                StoreOp::SetCell { slot, attr, value } => {
                    if *slot >= self.slots
                        || self.dead.contains(slot)
                        || *attr as usize >= self.arity
                    {
                        return Err(StoreError::corrupt(
                            &self.dir.join("wal.log"),
                            format!("set-cell on slot {slot} attr {attr} is out of range"),
                        ));
                    }
                    let sid = self.dict.store_id(ValueId::of(value))?;
                    self.write_sid(*slot, *attr, sid)?;
                }
            }
        }
        Ok(())
    }

    /// First live slot whose tuple equals `values` (bag-semantics delete
    /// target), or `None`. Comparison is by store id, so values the
    /// dictionary has never seen cannot match.
    fn find_live(&mut self, values: &[Value]) -> Result<Option<u64>> {
        let mut target = Vec::with_capacity(values.len());
        for v in values {
            match ValueId::get(v).and_then(|id| self.dict.lookup(id)) {
                Some(sid) => target.push(sid),
                None => return Ok(None),
            }
        }
        'slots: for slot in 0..self.slots {
            if self.dead.contains(&slot) {
                continue;
            }
            for (attr, &sid) in target.iter().enumerate() {
                if self.read_sid(slot, attr as u32)? != sid {
                    continue 'slots;
                }
            }
            return Ok(Some(slot));
        }
        Ok(None)
    }

    /// The page holding `(slot, attr)` and the cell offset within it.
    fn locate(&self, slot: u64, attr: u32) -> (u64, usize) {
        let chunk = slot / PAGE_CELLS as u64;
        let offset = (slot % PAGE_CELLS as u64) as usize;
        (chunk * self.arity as u64 + u64::from(attr), offset)
    }

    fn write_sid(&mut self, slot: u64, attr: u32, sid: u32) -> Result<()> {
        let (page, offset) = self.locate(slot, attr);
        self.pool.write_cell(&mut self.pager, page, offset, sid)
    }

    pub(crate) fn read_sid(&mut self, slot: u64, attr: u32) -> Result<u32> {
        let (page, offset) = self.locate(slot, attr);
        self.pool.read_cell(&mut self.pager, page, offset)
    }

    /// The runtime [`ValueId`] stored at `(slot, attr)`.
    pub(crate) fn read_id(&mut self, slot: u64, attr: u32) -> Result<ValueId> {
        let sid = self.read_sid(slot, attr)?;
        self.dict.runtime_id(sid)
    }

    /// Reads the column chunk of `attr` covering slots
    /// `[chunk·PAGE_CELLS, …)` into `out` as raw store ids.
    pub(crate) fn read_chunk(&mut self, chunk: u64, attr: u32, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        let page = chunk * self.arity as u64 + u64::from(attr);
        self.pool
            .read_cells(&mut self.pager, page, 0, PAGE_CELLS, out)
    }

    pub(crate) fn translate(&self, sid: u32) -> Result<ValueId> {
        self.dict.runtime_id(sid)
    }

    pub(crate) fn is_dead(&self, slot: u64) -> bool {
        self.dead.contains(&slot)
    }
}

impl Drop for ColumnStore {
    fn drop(&mut self) {
        // Best-effort: a failed checkpoint here is recovered from the WAL
        // on the next open, so the error is deliberately discarded.
        let _ = self.checkpoint();
    }
}

/// The decoded contents of `meta.dat`.
struct Meta {
    schema: Schema,
    slots: u64,
    committed: u64,
    dead: BTreeSet<u64>,
}

fn describe_schema(s: &Schema) -> String {
    let attrs: Vec<&str> = s.attributes().iter().map(|a| a.name.as_str()).collect();
    format!("{}({})", s.name(), attrs.join(", "))
}

const DOMAIN_TAG_TEXT: u8 = 0;
const DOMAIN_TAG_INTEGER: u8 = 1;
const DOMAIN_TAG_BOOLEAN: u8 = 2;
const DOMAIN_TAG_FINITE: u8 = 3;

fn write_meta(dir: &Path, path: &Path, meta: &Meta) -> Result<()> {
    let mut payload = Vec::new();
    put_u32(&mut payload, META_MAGIC);
    put_u32(&mut payload, META_VERSION);
    put_str(&mut payload, meta.schema.name());
    put_u32(&mut payload, meta.schema.arity() as u32);
    for a in meta.schema.attributes() {
        put_str(&mut payload, &a.name);
        match &a.domain {
            Domain::Unrestricted(AttrType::Text) => payload.push(DOMAIN_TAG_TEXT),
            Domain::Unrestricted(AttrType::Integer) => payload.push(DOMAIN_TAG_INTEGER),
            Domain::Unrestricted(AttrType::Boolean) => payload.push(DOMAIN_TAG_BOOLEAN),
            Domain::Finite(values) => {
                payload.push(DOMAIN_TAG_FINITE);
                put_u32(&mut payload, values.len() as u32);
                for v in values {
                    put_value(&mut payload, v);
                }
            }
        }
    }
    put_u64(&mut payload, meta.slots);
    put_u64(&mut payload, meta.committed);
    put_u32(&mut payload, meta.dead.len() as u32);
    for &slot in &meta.dead {
        put_u64(&mut payload, slot);
    }
    let mut record = Vec::new();
    frame(&mut record, &payload);

    // Atomic replace: a crash leaves either the old or the new checkpoint.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &record).map_err(|e| StoreError::io("write", &tmp, &e))?;
    let f = std::fs::File::open(&tmp).map_err(|e| StoreError::io("open", &tmp, &e))?;
    f.sync_all().map_err(|e| StoreError::io("sync", &tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| StoreError::io("rename", path, &e))?;
    let d = std::fs::File::open(dir).map_err(|e| StoreError::io("open", dir, &e))?;
    d.sync_all().map_err(|e| StoreError::io("sync", dir, &e))?;
    Ok(())
}

fn read_meta(path: &Path) -> Result<Meta> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io("read", path, &e))?;
    let mut meta: Option<Meta> = None;
    scan_frames(&bytes, |payload| {
        let mut r = Reader::new(payload, path);
        if r.take_u32()? != META_MAGIC {
            return Err(StoreError::corrupt(path, "bad checkpoint magic"));
        }
        let version = r.take_u32()?;
        if version != META_VERSION {
            return Err(StoreError::corrupt(
                path,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        let name = r.take_str()?;
        let arity = r.take_u32()? as usize;
        let mut builder = Schema::builder(name);
        for _ in 0..arity {
            let attr_name = r.take_str()?;
            let domain = match r.take_u8()? {
                DOMAIN_TAG_TEXT => Domain::text(),
                DOMAIN_TAG_INTEGER => Domain::integer(),
                DOMAIN_TAG_BOOLEAN => Domain::boolean(),
                DOMAIN_TAG_FINITE => {
                    let n = r.take_u32()? as usize;
                    let mut values = Vec::with_capacity(n);
                    for _ in 0..n {
                        values.push(take_value(&mut r)?);
                    }
                    Domain::finite(values)
                }
                tag => {
                    return Err(StoreError::corrupt(
                        path,
                        format!("unknown domain tag {tag}"),
                    ))
                }
            };
            builder = builder.attr_domain(attr_name, domain);
        }
        let slots = r.take_u64()?;
        let committed = r.take_u64()?;
        let ndead = r.take_u32()? as usize;
        let mut dead = BTreeSet::new();
        for _ in 0..ndead {
            dead.insert(r.take_u64()?);
        }
        meta = Some(Meta {
            schema: builder.build(),
            slots,
            committed,
            dead,
        });
        Ok(())
    })?;
    meta.ok_or_else(|| StoreError::corrupt(path, "checkpoint file holds no valid record"))
}
