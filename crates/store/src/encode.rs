//! Byte-level encoding shared by every on-disk format of the store: CRC-32
//! framing, little-endian integers, and the tagged [`Value`] encoding used
//! by the WAL and the persisted dictionary.
//!
//! Every variable-length structure on disk is framed as
//! `[len: u32][crc32(payload): u32][payload]` so a torn tail (a crash mid
//! `write`) is *detected* — the reader stops at the first frame whose length
//! runs past the file or whose checksum disagrees, and recovery truncates
//! the file there.

use crate::error::{Result, StoreError};
use cfd_relation::Value;
use std::path::Path;

/// Value tag bytes of the on-disk encoding (stable format, version 1).
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_STR: u8 = 4;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends a little-endian `u32`.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked forward reader over one decoded payload. All `take_*`
/// methods fail with [`StoreError::Corrupt`] instead of slicing past the
/// end, so a malformed payload can never panic the process.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8], path: &'a Path) -> Self {
        Reader { buf, pos: 0, path }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::corrupt(
                self.path,
                format!(
                    "payload truncated: wanted {n} bytes, {} left",
                    self.remaining()
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn take_i64(&mut self) -> Result<i64> {
        Ok(self.take_u64()? as i64)
    }

    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(self.path, "string payload is not UTF-8"))
    }
}

/// Appends the tagged encoding of one [`Value`].
pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
    }
}

/// Decodes one tagged [`Value`].
pub(crate) fn take_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.take_u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(r.take_i64()?)),
        TAG_STR => Ok(Value::Str(r.take_str()?)),
        tag => Err(StoreError::corrupt(
            r.path,
            format!("unknown value tag {tag}"),
        )),
    }
}

/// Appends one CRC-framed record (`[len][crc][payload]`) to `out`.
pub(crate) fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Walks CRC-framed records in `bytes`, calling `each` with every valid
/// payload, and returns the byte length of the valid prefix. A frame whose
/// length overruns the buffer or whose checksum disagrees ends the walk —
/// that is the torn tail recovery truncates away.
pub(crate) fn scan_frames(
    bytes: &[u8],
    mut each: impl FnMut(&[u8]) -> Result<()>,
) -> Result<usize> {
    let mut pos = 0usize;
    loop {
        if bytes.len() - pos < 8 {
            return Ok(pos);
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if bytes.len() - pos - 8 < len {
            return Ok(pos);
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return Ok(pos);
        }
        each(payload)?;
        pos += 8 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn values_round_trip() {
        let values = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Str(String::new()),
            Value::Str("Mountain Ave. — ünïcode".into()),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let path = Path::new("test");
        let mut r = Reader::new(&buf, path);
        for v in &values {
            assert_eq!(&take_value(&mut r).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Str("hello".into()));
        for cut in 0..buf.len() {
            let path = Path::new("test");
            let mut r = Reader::new(&buf[..cut], path);
            // Any prefix either decodes to a shorter value or errors — never
            // panics.
            let _ = take_value(&mut r);
        }
    }

    #[test]
    fn frames_scan_and_stop_at_torn_tail() {
        let mut buf = Vec::new();
        frame(&mut buf, b"first");
        frame(&mut buf, b"second record");
        let whole = buf.len();
        // A torn third record: header + half the payload.
        frame(&mut buf, b"torn away");
        buf.truncate(whole + 8 + 4);
        let mut seen: Vec<Vec<u8>> = Vec::new();
        let valid = scan_frames(&buf, |p| {
            seen.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(valid, whole);
        assert_eq!(seen, vec![b"first".to_vec(), b"second record".to_vec()]);

        // A corrupted checksum also ends the walk.
        let mut buf2 = Vec::new();
        frame(&mut buf2, b"good");
        let n = buf2.len();
        frame(&mut buf2, b"bad!");
        buf2[n + 9] ^= 0xFF; // flip a payload byte under an old crc
        let mut count = 0;
        let valid = scan_frames(&buf2, |_| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(valid, n);
        assert_eq!(count, 1);
    }
}
