//! The pager: fixed-size pages over one data file.
//!
//! The data file is a flat array of [`PAGE_BYTES`]-byte pages holding raw
//! little-endian `u32` cells (store-local dictionary ids — see
//! [`Dict`](crate::dict::Dict)). Page numbers are **computed**, never
//! looked up: the [`ColumnStore`](crate::ColumnStore) addresses page
//! `chunk * arity + attr`, so the file needs no page directory and grows by
//! appending. Reading past the current end of the file yields zeroed pages
//! (the pager is append-consistent: a page is only ever read back after the
//! cells in it were written through the pool, and recovery rewrites every
//! cell of the replayed tail).

use crate::error::{Result, StoreError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Cells per page. 1024 × 4-byte cells = 4 KiB pages.
pub const PAGE_CELLS: usize = 1024;
/// Bytes per page.
pub const PAGE_BYTES: usize = PAGE_CELLS * 4;

/// One open data file addressed in fixed-size pages.
#[derive(Debug)]
pub struct Pager {
    file: File,
    path: PathBuf,
    /// Number of whole pages currently in the file. A partial tail page
    /// (torn final write) is treated as absent and overwritten on the next
    /// write to it.
    pages: u64,
    /// Reused byte buffer for page transfers.
    scratch: Vec<u8>,
}

impl Pager {
    /// Opens (creating if absent) the data file at `path`.
    pub fn open(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("open", path, &e))?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::io("stat", path, &e))?
            .len();
        Ok(Pager {
            file,
            path: path.to_path_buf(),
            pages: len / PAGE_BYTES as u64,
            scratch: vec![0u8; PAGE_BYTES],
        })
    }

    /// Number of whole pages in the file.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Reads page `id` into `cells` (must hold [`PAGE_CELLS`] cells).
    /// Pages at or past the end of the file read as zeros.
    pub fn read_page(&mut self, id: u64, cells: &mut [u32]) -> Result<()> {
        debug_assert_eq!(cells.len(), PAGE_CELLS);
        if id >= self.pages {
            cells.fill(0);
            return Ok(());
        }
        self.file
            .seek(SeekFrom::Start(id * PAGE_BYTES as u64))
            .map_err(|e| StoreError::io("seek", &self.path, &e))?;
        self.file
            .read_exact(&mut self.scratch)
            .map_err(|e| StoreError::io("read", &self.path, &e))?;
        for (i, cell) in cells.iter_mut().enumerate() {
            let o = i * 4;
            *cell = u32::from_le_bytes([
                self.scratch[o],
                self.scratch[o + 1],
                self.scratch[o + 2],
                self.scratch[o + 3],
            ]);
        }
        Ok(())
    }

    /// Writes page `id` from `cells`, extending the file as needed. Pages
    /// between the current end and `id` become zero-filled holes (sparse
    /// where the filesystem supports it) — they are always written before
    /// being read back, because columns grow in lockstep.
    pub fn write_page(&mut self, id: u64, cells: &[u32]) -> Result<()> {
        debug_assert_eq!(cells.len(), PAGE_CELLS);
        for (i, cell) in cells.iter().enumerate() {
            self.scratch[i * 4..i * 4 + 4].copy_from_slice(&cell.to_le_bytes());
        }
        self.file
            .seek(SeekFrom::Start(id * PAGE_BYTES as u64))
            .map_err(|e| StoreError::io("seek", &self.path, &e))?;
        self.file
            .write_all(&self.scratch)
            .map_err(|e| StoreError::io("write", &self.path, &e))?;
        self.pages = self.pages.max(id + 1);
        Ok(())
    }

    /// Flushes the data file's contents to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("sync", &self.path, &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfd-pager-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.dat")
    }

    #[test]
    fn pages_round_trip_and_persist() {
        let path = tmp("roundtrip");
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.pages(), 0);
        let mut page = vec![0u32; PAGE_CELLS];
        for (i, c) in page.iter_mut().enumerate() {
            *c = i as u32 * 3 + 1;
        }
        pager.write_page(2, &page).unwrap();
        assert_eq!(pager.pages(), 3);
        pager.sync().unwrap();
        drop(pager);

        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.pages(), 3);
        let mut back = vec![0u32; PAGE_CELLS];
        pager.read_page(2, &mut back).unwrap();
        assert_eq!(back, page);
        // The hole pages read as zeros, as does anything past the end.
        pager.read_page(0, &mut back).unwrap();
        assert!(back.iter().all(|&c| c == 0));
        pager.read_page(99, &mut back).unwrap();
        assert!(back.iter().all(|&c| c == 0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn a_torn_tail_page_is_ignored() {
        let path = tmp("torn");
        let mut pager = Pager::open(&path).unwrap();
        let page = vec![7u32; PAGE_CELLS];
        pager.write_page(0, &page).unwrap();
        drop(pager);
        // Simulate a torn append: half a page of garbage at the end.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&vec![0xAB; PAGE_BYTES / 2]).unwrap();
        drop(f);
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.pages(), 1, "partial tail page does not count");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
