//! `cfd-store` — the durable, bounded-memory storage layer.
//!
//! The rest of the workspace works over fully in-memory [`Relation`]s;
//! this crate adds a disk-backed backend with the same detection
//! semantics: a [`ColumnStore`] keeps interned columns in fixed-size
//! pages on disk, caches them through a bounded [`BufferPool`], persists
//! its value dictionary so ids survive restart, and makes every applied
//! batch durable through a write-ahead log with group commit.
//!
//! The design is classic out-of-core database machinery in miniature:
//!
//! * [`Pager`] — fixed 4 KiB pages over a single `pages.dat`, page
//!   numbers computed from `(chunk, attr)` so no directory is needed;
//! * [`BufferPool`] — pin/unpin, LRU-ish eviction, dirty-page writeback;
//!   its [`PoolStats::peak_resident`] is the proof that scans over
//!   instances much larger than the pool stay within the page budget;
//! * a persisted dictionary mapping store-local dense `u32` ids to
//!   runtime [`ValueId`](cfd_relation::ValueId)s (runtime ids are
//!   process-local and must never reach disk);
//! * a WAL ([`StoreOp`] records, CRC-framed, one fsync per batch) whose
//!   replay makes [`ColumnStore::apply_batch`] crash-recoverable — see
//!   the durability contract on [`ColumnStore`].
//!
//! Detection runs directly over the store with a streaming chunk scan
//! that is byte-identical to the in-memory detectors (reports are ordered
//! sets), so the engine's detect/repair/sqlgen layers work unchanged over
//! either backing.
//!
//! [`Relation`]: cfd_relation::Relation

mod dict;
mod encode;
mod error;
mod pager;
mod pool;
mod scan;
mod store;
mod wal;

pub use error::{Result, StoreError};
pub use pager::{Pager, PAGE_BYTES, PAGE_CELLS};
pub use pool::{BufferPool, PoolStats};
pub use store::{ColumnStore, StoreOptions};
pub use wal::StoreOp;
