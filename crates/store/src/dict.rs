//! The persisted value dictionary: store-local dense ids that survive
//! restart.
//!
//! The process-wide interner's [`ValueId`]s are explicitly **not** stable
//! across processes (its docs forbid persisting them), so pages never
//! contain runtime ids. Instead each store keeps its own dense `u32` id
//! space: the dictionary file is an append-only sequence of CRC-framed
//! encoded [`Value`]s, record `n` defining store id `n`. Opening a store
//! replays the file, re-interns every value, and rebuilds the two-way map —
//! page cells are translated store id → runtime id on read and runtime id →
//! store id on write.
//!
//! Durability: new entries are appended (buffered by the OS) as batches are
//! prepared, and [`Dict::sync`] is called **before** the WAL commit fsync of
//! any batch referencing them, so every store id reachable from committed
//! data is always durable. Entries left behind by an uncommitted batch are
//! harmless — they occupy ids nothing references.

use crate::encode::{frame, put_value, scan_frames, take_value, Reader};
use crate::error::{Result, StoreError};
use cfd_relation::ValueId;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The two-way store-id ↔ runtime-id map plus its append-only backing file.
#[derive(Debug)]
pub(crate) struct Dict {
    file: File,
    path: PathBuf,
    store_to_runtime: Vec<ValueId>,
    runtime_to_store: HashMap<ValueId, u32>,
    /// Entries appended since the last [`Dict::sync`].
    dirty: bool,
}

impl Dict {
    /// Opens (creating if absent) the dictionary at `path`, replaying every
    /// valid record and truncating any torn tail.
    pub fn open(path: &Path) -> Result<Dict> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("open", path, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError::io("read", path, &e))?;
        let mut store_to_runtime = Vec::new();
        let mut runtime_to_store = HashMap::new();
        let valid = scan_frames(&bytes, |payload| {
            let mut r = Reader::new(payload, path);
            let value = take_value(&mut r)?;
            let id = ValueId::from_value(value);
            runtime_to_store
                .entry(id)
                .or_insert(store_to_runtime.len() as u32);
            store_to_runtime.push(id);
            Ok(())
        })?;
        if valid as u64 != bytes.len() as u64 {
            // Torn tail from a crash mid-append: cut it off.
            file.set_len(valid as u64)
                .map_err(|e| StoreError::io("truncate", path, &e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek", path, &e))?;
        Ok(Dict {
            file,
            path: path.to_path_buf(),
            store_to_runtime,
            runtime_to_store,
            dirty: false,
        })
    }

    /// Number of defined store ids.
    pub fn len(&self) -> usize {
        self.store_to_runtime.len()
    }

    /// The store id of runtime `id`, appending a new dictionary entry when
    /// the value has never been stored here.
    pub fn store_id(&mut self, id: ValueId) -> Result<u32> {
        if let Some(&sid) = self.runtime_to_store.get(&id) {
            return Ok(sid);
        }
        let sid = self.store_to_runtime.len() as u32;
        let mut payload = Vec::new();
        put_value(&mut payload, id.resolve());
        let mut record = Vec::new();
        frame(&mut record, &payload);
        self.file
            .write_all(&record)
            .map_err(|e| StoreError::io("write", &self.path, &e))?;
        self.store_to_runtime.push(id);
        self.runtime_to_store.insert(id, sid);
        self.dirty = true;
        Ok(sid)
    }

    /// The store id of runtime `id` if the value has ever been stored here,
    /// without appending (used by delete matching: an unknown value cannot
    /// occur in any page).
    pub fn lookup(&self, id: ValueId) -> Option<u32> {
        self.runtime_to_store.get(&id).copied()
    }

    /// The runtime id of store id `sid`.
    pub fn runtime_id(&self, sid: u32) -> Result<ValueId> {
        self.store_to_runtime
            .get(sid as usize)
            .copied()
            .ok_or_else(|| {
                StoreError::corrupt(
                    &self.path,
                    format!("store id {sid} out of range ({} defined)", self.len()),
                )
            })
    }

    /// Forces appended entries to stable storage. Must complete before the
    /// WAL commit of any batch whose pages reference them.
    pub fn sync(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("sync", &self.path, &e))?;
        self.dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::Value;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfd-dict-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("dict.dat")
    }

    #[test]
    fn ids_are_dense_stable_and_survive_reopen() {
        let path = tmp("reopen");
        let v = [
            Value::from("NYC"),
            Value::from("MH"),
            Value::Int(908),
            Value::Null,
        ];
        let ids: Vec<ValueId> = v.iter().map(ValueId::of).collect();
        let mut dict = Dict::open(&path).unwrap();
        assert_eq!(dict.store_id(ids[0]).unwrap(), 0);
        assert_eq!(dict.store_id(ids[1]).unwrap(), 1);
        assert_eq!(dict.store_id(ids[0]).unwrap(), 0, "idempotent");
        assert_eq!(dict.store_id(ids[2]).unwrap(), 2);
        assert_eq!(dict.store_id(ids[3]).unwrap(), 3);
        dict.sync().unwrap();
        drop(dict);

        let mut dict = Dict::open(&path).unwrap();
        assert_eq!(dict.len(), 4);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dict.runtime_id(i as u32).unwrap(), *id);
            assert_eq!(dict.store_id(*id).unwrap(), i as u32);
        }
        assert!(dict.runtime_id(4).is_err());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn a_torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        let mut dict = Dict::open(&path).unwrap();
        dict.store_id(ValueId::of(&Value::from("kept"))).unwrap();
        dict.sync().unwrap();
        drop(dict);
        let before = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55; 7]).unwrap(); // partial frame header
        drop(f);
        let dict = Dict::open(&path).unwrap();
        assert_eq!(dict.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
