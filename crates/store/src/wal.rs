//! The write-ahead log: one CRC-framed commit record per applied batch.
//!
//! # Record format
//!
//! Each record is `[len: u32][crc32(payload): u32][payload]` with payload
//!
//! ```text
//! seq: u64              — batch sequence number (== committed batches so far)
//! nops: u32             — number of ops in the batch
//! ops: nops ×           — tag u8:
//!   0 Insert  + arity values        (tagged Value encoding)
//!   1 Delete  + arity values
//!   2 SetCell + slot u64 + attr u32 + value
//! ```
//!
//! Ops carry **values**, never ids — replay re-interns, so the log is
//! independent of both the process-local interner and the store dictionary.
//!
//! # Group commit
//!
//! One record = one coalesced batch = **one fsync**, whatever the batch
//! size; the serving layer's micro-batching leader collects concurrent
//! writers into a single `apply_batch`, so its fsync is amortized over all
//! of them. The commit point of a batch is this record's fsync: everything
//! before it (dictionary appends) is made durable first, everything after
//! it (page mutations) is recomputable by replay.
//!
//! # Recovery
//!
//! The log is truncated at every checkpoint, so on open every record in it
//! is newer than the checkpoint. Replay applies records in order, verifying
//! the sequence numbers are contiguous; the first torn or corrupt frame
//! ends replay and is truncated away (a crash mid-append loses only the
//! batch that never reported success).

use crate::encode::{frame, put_u32, put_u64, put_value, scan_frames, take_value, Reader};
use crate::error::{Result, StoreError};
use cfd_relation::Value;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One durable mutation of the store, as logged and replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreOp {
    /// Append a tuple (values in schema order).
    Insert(Vec<Value>),
    /// Tombstone the first live slot holding an identical tuple (bag
    /// semantics; a no-op when none matches).
    Delete(Vec<Value>),
    /// Overwrite one cell of a live slot — the logged form of a repair's
    /// `set_id` edit.
    SetCell {
        /// The physical slot (not the live row index).
        slot: u64,
        /// The attribute position.
        attr: u32,
        /// The new value.
        value: Value,
    },
}

const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;
const TAG_SET_CELL: u8 = 2;

/// One committed batch as replayed from the log: its sequence number and
/// its ops in apply order.
pub(crate) type ReplayedBatch = (u64, Vec<StoreOp>);

/// The open write-ahead log.
#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` and returns it together
    /// with the replayable committed batches `(seq, ops)` in order. A torn
    /// tail is truncated.
    pub fn open(path: &Path) -> Result<(Wal, Vec<ReplayedBatch>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("open", path, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError::io("read", path, &e))?;
        let mut batches = Vec::new();
        let valid = scan_frames(&bytes, |payload| {
            let mut r = Reader::new(payload, path);
            let seq = r.take_u64()?;
            let nops = r.take_u32()? as usize;
            let mut ops = Vec::with_capacity(nops);
            for _ in 0..nops {
                ops.push(take_op(&mut r, path)?);
            }
            batches.push((seq, ops));
            Ok(())
        })?;
        if valid as u64 != bytes.len() as u64 {
            file.set_len(valid as u64)
                .map_err(|e| StoreError::io("truncate", path, &e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek", path, &e))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: valid as u64,
            },
            batches,
        ))
    }

    /// Appends and fsyncs one commit record — the durability point of a
    /// batch (one fsync per group-committed batch).
    pub fn append_commit(&mut self, seq: u64, ops: &[StoreOp]) -> Result<()> {
        let mut payload = Vec::new();
        put_u64(&mut payload, seq);
        put_u32(&mut payload, ops.len() as u32);
        for op in ops {
            put_op(&mut payload, op);
        }
        let mut record = Vec::new();
        frame(&mut record, &payload);
        self.file
            .write_all(&record)
            .map_err(|e| StoreError::io("write", &self.path, &e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("sync", &self.path, &e))?;
        self.len += record.len() as u64;
        Ok(())
    }

    /// Current log size in bytes (the checkpoint trigger input).
    pub fn size(&self) -> u64 {
        self.len
    }

    /// Empties the log — called at the end of a checkpoint, after pages,
    /// dictionary and metadata are all durable.
    pub fn truncate(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io("truncate", &self.path, &e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io("seek", &self.path, &e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("sync", &self.path, &e))?;
        self.len = 0;
        Ok(())
    }
}

fn put_op(out: &mut Vec<u8>, op: &StoreOp) {
    match op {
        StoreOp::Insert(values) => {
            out.push(TAG_INSERT);
            put_u32(out, values.len() as u32);
            for v in values {
                put_value(out, v);
            }
        }
        StoreOp::Delete(values) => {
            out.push(TAG_DELETE);
            put_u32(out, values.len() as u32);
            for v in values {
                put_value(out, v);
            }
        }
        StoreOp::SetCell { slot, attr, value } => {
            out.push(TAG_SET_CELL);
            put_u64(out, *slot);
            put_u32(out, *attr);
            put_value(out, value);
        }
    }
}

fn take_op(r: &mut Reader<'_>, path: &Path) -> Result<StoreOp> {
    let tag = r.take_u8()?;
    match tag {
        TAG_INSERT | TAG_DELETE => {
            let nvals = r.take_u32()? as usize;
            let mut values = Vec::with_capacity(nvals);
            for _ in 0..nvals {
                values.push(take_value(r)?);
            }
            Ok(if tag == TAG_INSERT {
                StoreOp::Insert(values)
            } else {
                StoreOp::Delete(values)
            })
        }
        TAG_SET_CELL => {
            let slot = r.take_u64()?;
            let attr = r.take_u32()?;
            let value = take_value(r)?;
            Ok(StoreOp::SetCell { slot, attr, value })
        }
        tag => Err(StoreError::corrupt(path, format!("unknown op tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfd-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_ops() -> Vec<StoreOp> {
        vec![
            StoreOp::Insert(vec![Value::from("01"), Value::Int(908), Value::Null]),
            StoreOp::Delete(vec![Value::from("44"), Value::Int(131), Value::Bool(true)]),
            StoreOp::SetCell {
                slot: 7,
                attr: 2,
                value: Value::from("MH"),
            },
        ]
    }

    #[test]
    fn commits_replay_in_order() {
        let path = tmp("replay");
        let (mut wal, batches) = Wal::open(&path).unwrap();
        assert!(batches.is_empty());
        wal.append_commit(0, &sample_ops()).unwrap();
        wal.append_commit(1, &[StoreOp::Insert(vec![Value::Int(5)])])
            .unwrap();
        assert!(wal.size() > 0);
        drop(wal);
        let (_, batches) = Wal::open(&path).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0, 0);
        assert_eq!(batches[0].1, sample_ops());
        assert_eq!(batches[1].0, 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn a_torn_commit_is_discarded() {
        let path = tmp("torn");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append_commit(0, &sample_ops()).unwrap();
        drop(wal);
        let good = std::fs::metadata(&path).unwrap().len();
        // A half-written next record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);
        let (wal, batches) = Wal::open(&path).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(wal.size(), good, "torn tail truncated");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = tmp("truncate");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append_commit(0, &sample_ops()).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.size(), 0);
        drop(wal);
        let (_, batches) = Wal::open(&path).unwrap();
        assert!(batches.is_empty());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
