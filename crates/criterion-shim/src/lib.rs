//! A self-contained, offline stand-in for the subset of the `criterion` API
//! this workspace's benches use.
//!
//! The build environment has no network access, so the real `criterion` crate
//! cannot be fetched. This shim keeps every `benches/*.rs` file source- and
//! invocation-compatible (`cargo bench`, `cargo bench --no-run`) while
//! implementing a deliberately simple measurement loop: each benchmark is
//! warmed up once and then timed for `sample_size` iterations (bounded by
//! `measurement_time`), reporting the min / mean / max wall-clock time per
//! iteration. The numbers are indicative, not statistically rigorous — the
//! `experiments` binary in `cfd-bench` remains the reproduction-quality
//! harness — but the shapes (who is faster, what scales how) are preserved.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered into the printed label (`name/param`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

/// The per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    max_total: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one sample per call.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up (also primes caches the measured runs rely on).
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() >= self.max_total {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<50} {:>12.6?} min {:>12.6?} mean {:>12.6?} max  ({} samples)",
        min,
        mean,
        max,
        samples.len()
    );
}

/// A named group of benchmarks with shared sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Shortens the warm-up phase. Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    // By-value `id` mirrors the real criterion signature the shim must stay
    // drop-in compatible with.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (purely cosmetic in the shim).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
            max_total: self.measurement_time,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Criterion {
    fn new() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(3),
        }
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            measurement_time,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.default_sample_size),
            target_samples: self.default_sample_size,
            max_total: self.default_measurement_time,
        };
        f(&mut bencher);
        report(&id.to_string(), &bencher.samples);
        self
    }
}

#[doc(hidden)]
pub fn __run_group(fns: &[&dyn Fn(&mut Criterion)]) {
    let mut c = Criterion::new();
    for f in fns {
        f(&mut c);
    }
}

/// Declares a group of benchmark functions (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $crate::__run_group(&[$(&$target),+]);
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: 3,
            max_total: Duration::from_secs(1),
        };
        let mut count = 0u32;
        b.iter(|| {
            count += 1;
            count
        });
        // 1 warm-up + up to 3 samples.
        assert!(!b.samples.is_empty() && b.samples.len() <= 3);
        assert_eq!(count as usize, b.samples.len() + 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("cnf", 5000).to_string(), "cnf/5000");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("in", 1), &41, |b, i| b.iter(|| i + 1));
        group.finish();
    }
}
