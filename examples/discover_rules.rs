//! Discovering FDs and constant CFD patterns from data (the "future work"
//! extension of Section 7), then compiling the discovered constraints into
//! a prepared `Engine` to audit a noisy version of the same workload.
//!
//! Run with `cargo run --release --example discover_rules`.

use cfd::prelude::*;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_discovery::{discover_constant_cfds, discover_fds, DiscoveryConfig};
use std::sync::Arc;

fn main() {
    // Learn from a clean sample…
    let clean = TaxGenerator::new(TaxConfig {
        size: 3_000,
        noise_percent: 0.0,
        seed: 1,
    })
    .generate()
    .relation;
    let config = DiscoveryConfig {
        max_lhs_size: 1,
        min_support: 3,
        min_confidence: 1.0,
    };

    let fds = discover_fds(&clean, &config);
    println!("discovered {} exact single-attribute FDs, e.g.:", fds.len());
    for d in fds.iter().take(8) {
        println!(
            "  {} -> {} (confidence {:.2})",
            d.cfd.lhs_names().join(","),
            d.cfd.rhs_names()[0],
            d.confidence
        );
    }

    let cfds = discover_constant_cfds(&clean, &config);
    println!("\nmined {} constant-pattern CFDs, e.g.:", cfds.len());
    for d in cfds.iter().take(3) {
        println!(
            "  [{}] -> [{}] with {} pattern rows (support {})",
            d.cfd.lhs_names().join(","),
            d.cfd.rhs_names().join(","),
            d.cfd.tableau().len(),
            d.support
        );
    }

    // …then audit a noisy instance with the discovered zip→state constraint.
    let noisy = TaxGenerator::new(TaxConfig {
        size: 3_000,
        noise_percent: 6.0,
        seed: 2,
    })
    .generate()
    .relation;
    if let Some(zip_state) = cfds
        .iter()
        .find(|d| d.cfd.lhs_names() == vec!["ZIP"] && d.cfd.rhs_names() == vec!["ST"])
    {
        // Mined rules go through the same builder-time validation as
        // hand-written ones (schema check, consistency) before serving.
        let engine = Engine::builder()
            .rule(zip_state.cfd.clone())
            .build()
            .expect("a mined constraint is consistent");
        let report = engine.detect(Arc::new(noisy)).unwrap();
        println!(
            "\nauditing a noisy instance with the discovered zip→state CFD: {} findings",
            report.total()
        );
    }
}
