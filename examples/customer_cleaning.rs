//! The full paper walkthrough on the customer relation: reasoning about the
//! CFDs of Fig. 2 (consistency, implication, minimal cover) and validating
//! several CFDs at once with the merged tableaux of Section 4.2.
//!
//! Run with `cargo run --example customer_cleaning`.

use cfd::prelude::*;
use cfd_core::NormalCfd;
use cfd_datagen::cust::{phi3_with_fd, phi5};
use cfd_detect::MergedTableaux;
use std::sync::Arc;

fn main() {
    let schema = cust_schema();
    let data = cust_instance();
    let sigma = cfd_datagen::fig2_cfd_set();

    // --- Reasoning (Section 3) ---------------------------------------------
    println!(
        "Σ (Fig. 2) is consistent: {}",
        sigma.is_consistent().unwrap()
    );

    // Example 3.2: {ψ1 = (A→B, (_‖b)), ψ2 = (B→C, (_‖c))} ⊨ (A→C, (a‖_)).
    let abc = cfd_relation::Schema::builder("R")
        .text("A")
        .text("B")
        .text("C")
        .build();
    let psi1 = NormalCfd::parse(&abc, ["A"], &["_"], "B", "b").unwrap();
    let psi2 = NormalCfd::parse(&abc, ["B"], &["_"], "C", "c").unwrap();
    let phi = NormalCfd::parse(&abc, ["A"], &["a"], "C", "_").unwrap();
    println!(
        "Example 3.2: {{ψ1, ψ2}} ⊨ ({phi})?  {}",
        cfd_core::implies(&[psi1.clone(), psi2.clone()], &phi)
    );

    // Example 3.3: the minimal cover of {ψ1, ψ2, ϕ} is {(∅→B, b), (∅→C, c)}.
    let cover = cfd_core::minimal_cover(&[psi1, psi2, phi]);
    println!("Example 3.3 minimal cover:");
    for c in &cover {
        println!("  {c}");
    }

    // The Fig. 2 set itself also shrinks a little when covered.
    let fig2_cover = sigma.minimal_cover().unwrap();
    println!(
        "Fig. 2 set: {} pattern rows; minimal cover: {} pattern rows",
        sigma.total_patterns(),
        fig2_cover.total_patterns()
    );

    // --- Merged detection (Section 4.2) -------------------------------------
    let cfds = vec![phi3_with_fd(), phi5()];
    let merged = MergedTableaux::build(&cfds).unwrap();
    println!(
        "\nMerged tableaux (Fig. 7): T^X_Σ =\n{}",
        merged.x_relation("TX")
    );
    println!("T^Y_Σ =\n{}", merged.y_relation("TY"));

    let detector = Detector::new();
    let report = detector
        .detect_set_merged(&cfds, Arc::new(data.clone()))
        .unwrap();
    println!("Merged detection on Fig. 1:\n{report}");

    // --- Repair through a prepared session ----------------------------------
    let engine = Engine::builder()
        .rule_set(sigma)
        .build()
        .expect("the Fig. 2 set is consistent");
    let mut session = engine
        .session(std::sync::Arc::new(data))
        .expect("schema matches");
    let repair = session.repair(RepairKind::EquivClass).expect("repair runs");
    println!(
        "Repair of Fig. 1 w.r.t. Fig. 2: {} change(s), satisfied = {}",
        repair.changes(),
        repair.satisfied
    );
    let _ = schema;
}
