//! Quickstart: define CFDs, check data against them, look at the generated
//! SQL, and repair the violations.
//!
//! Run with `cargo run --example quickstart`.

use cfd::prelude::*;
use cfd_datagen::cust::{phi1, phi2, phi3};

fn main() {
    // The cust relation of Fig. 1 and the CFDs of Fig. 2.
    let data = cust_instance();
    let cfds = vec![phi1(), phi2(), phi3()];

    println!("== data ==\n{data}");

    // 1. Satisfaction: ϕ2 is violated (area code 908 should imply city MH).
    for cfd in &cfds {
        println!(
            "{} is {}",
            cfd.name().unwrap_or("cfd"),
            if cfd.satisfied_by(&data) {
                "satisfied"
            } else {
                "VIOLATED"
            }
        );
    }

    // 2. The SQL a relational backend would run (Fig. 5).
    let detector = Detector::new();
    let (qc, qv) = detector.sql_for(&phi2(), "cust");
    println!("\n== generated SQL for phi2 ==\nQC: {qc}\nQV: {qv}");

    // 3. Detection via the in-memory SQL engine.
    let violations = detector.detect(&phi2(), &data).expect("detection succeeds");
    println!("\n== violations of phi2 ==\n{violations}");

    // 4. Repair by value modification (Section 6).
    let repair = Repairer::new().repair(&cfds, &data);
    println!(
        "== repair ==\n{} change(s), cost {:.1}, satisfied afterwards: {}",
        repair.changes(),
        repair.cost,
        repair.satisfied
    );
    for m in &repair.modifications {
        println!("  {m}");
    }
}
