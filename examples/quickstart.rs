//! Quickstart: compile CFDs into an `Engine` once, open a `Session` over
//! the data, detect, explain the findings, and repair — the prepared
//! lifecycle the facade is built around.
//!
//! Run with `cargo run --example quickstart`.

use cfd::prelude::*;
use std::sync::Arc;

fn main() {
    // The cust relation of Fig. 1 and the CFDs of Fig. 2.
    let data = Arc::new(cust_instance());
    println!("== data ==\n{data}");

    // 1. Compile the rule set once: schema-checked, consistency-validated
    //    (Section 3), detection queries generated (Section 4). The engine is
    //    immutable and Send + Sync — share it across threads freely.
    let engine = Engine::builder()
        .rule_set(cfd::datagen::fig2_cfd_set())
        .config(
            EngineConfig::builder()
                .detector(DetectorKind::Direct)
                .repair_kind(RepairKind::EquivClass)
                .build()
                .expect("valid configuration"),
        )
        .build()
        .expect("consistent rule set");
    println!("== rules ==\n{}", engine.rules());

    // 2. The SQL a relational backend would run for ϕ2 (Fig. 5) — the engine
    //    compiled these once at build time.
    let (qc, qv) = Detector::new().sql_for(&engine.rules().cfds()[1], "cust");
    println!("== generated SQL for phi2 ==\nQC: {qc}\nQV: {qv}");

    // 3. Serve the dataset: one session holds the per-dataset state (LHS
    //    indexes, prepared plans) and answers detect/explain/repair.
    let mut session = engine.session(Arc::clone(&data)).expect("schema matches");
    let report = session.detect().expect("detection succeeds");
    println!("== violations ==\n{report}");

    // 4. Provenance: which pattern is violated, and what a repair would do.
    for item in report.items() {
        for e in session.explain(&item).expect("explain succeeds") {
            println!(
                "row(s) {:?} violate {} pattern #{}; planned: {}",
                e.rows,
                e.cfd_name.as_deref().unwrap_or("?"),
                e.pattern_index,
                e.planned
                    .iter()
                    .map(|p| format!("set attr {} to {} (cost {:.1})", p.attr, p.target, p.cost))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
    }

    // 5. Repair by value modification (Section 6), through the same handle.
    let repair = session.repair(RepairKind::EquivClass).expect("repair runs");
    println!(
        "\n== repair ==\n{} change(s), cost {:.1}, satisfied afterwards: {}",
        repair.changes(),
        repair.cost,
        repair.satisfied
    );
    for m in &repair.modifications {
        println!("  {m}");
    }
}
