//! Auditing a synthetic tax-records table — the workload of the paper's
//! evaluation: generate noisy data, validate a set of real-world CFDs with
//! the merged query pair, then repair and re-validate.
//!
//! Run with `cargo run --release --example tax_audit`.

use cfd::prelude::*;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 20K tax records, 5% of which carry an injected error.
    let generated = TaxGenerator::new(TaxConfig {
        size: 20_000,
        noise_percent: 5.0,
        seed: 2026,
    })
    .generate();
    println!(
        "generated {} tax records, {} of them dirty",
        generated.relation.len(),
        generated.dirty_rows.len()
    );

    // The constraints of Section 5: zip→state, zip+city→state, area-code→city,
    // state+marital-status→exemption, plus state+salary→tax-rate.
    let workload = CfdWorkload::new(7);
    let cfds = vec![
        workload.zip_state_full(),
        workload.single(EmbeddedFd::ZipCityToState, 500, 100.0),
        workload.single(EmbeddedFd::AreaToCity, 400, 100.0),
        workload.single(EmbeddedFd::StateMaritalToExemption, 100, 100.0),
        workload.single(EmbeddedFd::StateSalaryToTax, 50, 100.0),
    ];

    let data = Arc::new(generated.relation.clone());
    let detector = Detector::new();

    // Per-CFD query pairs (2 × |Σ| passes) vs the merged pair (2 passes) vs
    // 4-way parallel detection.
    let start = Instant::now();
    let per_cfd = detector.detect_set(&cfds, Arc::clone(&data)).unwrap();
    println!(
        "per-CFD detection: {:?}, {} findings",
        start.elapsed(),
        per_cfd.total()
    );

    let start = Instant::now();
    let merged = detector
        .detect_set_merged(&cfds, Arc::clone(&data))
        .unwrap();
    println!(
        "merged detection:  {:?}, {} findings",
        start.elapsed(),
        merged.total()
    );

    let start = Instant::now();
    let parallel = detector
        .detect_set_parallel(&cfds, Arc::clone(&data), 4)
        .unwrap();
    println!(
        "parallel (4 thr):  {:?}, {} findings",
        start.elapsed(),
        parallel.total()
    );

    // Repair and re-validate.
    let start = Instant::now();
    let repair = Repairer::new().repair(&cfds, &generated.relation);
    println!(
        "repair: {} cell change(s) in {:?}, cost {:.1}, satisfied afterwards: {}",
        repair.changes(),
        start.elapsed(),
        repair.cost,
        repair.satisfied
    );
    let after = detector
        .detect_set(&cfds, Arc::new(repair.repaired))
        .unwrap();
    println!("violations after repair: {}", after.total());
}
