//! Auditing a synthetic tax-records table — the workload of the paper's
//! evaluation — through the prepared `Engine`/`Session` API: compile the
//! constraint set once, serve detection with several engines, stream a
//! batch of late-arriving records with incremental maintenance, then
//! repair and re-validate from the same handle.
//!
//! Run with `cargo run --release --example tax_audit`.

use cfd::prelude::*;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 20K tax records, 5% of which carry an injected error.
    let generated = TaxGenerator::new(TaxConfig {
        size: 20_000,
        noise_percent: 5.0,
        seed: 2026,
    })
    .generate();
    println!(
        "generated {} tax records, {} of them dirty",
        generated.relation.len(),
        generated.dirty_rows.len()
    );

    // The constraints of Section 5: zip→state, zip+city→state, area-code→city,
    // state+marital-status→exemption, plus state+salary→tax-rate.
    let workload = CfdWorkload::new(7);
    let cfds = [
        workload.zip_state_full(),
        workload.single(EmbeddedFd::ZipCityToState, 500, 100.0),
        workload.single(EmbeddedFd::AreaToCity, 400, 100.0),
        workload.single(EmbeddedFd::StateMaritalToExemption, 100, 100.0),
        workload.single(EmbeddedFd::StateSalaryToTax, 50, 100.0),
    ];
    let data = Arc::new(generated.relation);

    // Per-CFD query pairs (2 × |Σ| passes) vs the merged pair (2 passes) vs
    // 4-way parallel detection vs the cost-based planner: one compiled
    // engine per serving strategy, all sharing the validated rule set.
    for kind in [
        DetectorKind::Sql,
        DetectorKind::SqlMerged,
        DetectorKind::SqlParallel { threads: 4 },
        DetectorKind::Direct,
        DetectorKind::Auto,
    ] {
        let engine = Engine::builder()
            .rules(cfds.iter().cloned())
            .config(EngineConfig::builder().detector(kind).build().unwrap())
            .build()
            .expect("consistent rules");
        let mut session = engine.session(Arc::clone(&data)).unwrap();
        let start = Instant::now();
        let report = session.detect().expect("detection succeeds");
        println!(
            "{kind:?} detection: {:?}, {} findings",
            start.elapsed(),
            report.total()
        );
    }

    // The serving path: one prepared engine, one session, streamed updates.
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .build()
        .expect("consistent rules");
    let mut session = engine.session(Arc::clone(&data)).unwrap();

    let late = TaxGenerator::new(TaxConfig {
        size: 500,
        noise_percent: 10.0,
        seed: 2027,
    })
    .generate();
    let batch: Vec<BatchOp> = late
        .relation
        .to_tuples()
        .into_iter()
        .map(BatchOp::Insert)
        .collect();
    let start = Instant::now();
    let after_batch = session.apply_batch(&batch).expect("batch applies");
    println!(
        "streamed {} late records in {:?} (group-local maintenance), report now {} findings",
        batch.len(),
        start.elapsed(),
        after_batch.total()
    );

    // Repair and re-validate from the same handle. The session's shared LHS
    // indexes feed the equivalence-class engine's dirty-group tracking.
    let start = Instant::now();
    let repair = session.repair(RepairKind::EquivClass).expect("repair runs");
    println!(
        "repair: {} cell change(s) in {:?}, cost {:.1}, satisfied afterwards: {}",
        repair.changes(),
        start.elapsed(),
        repair.cost,
        repair.satisfied
    );
    let clean = engine
        .detect(Arc::new(repair.repaired))
        .expect("re-validation succeeds");
    println!("violations after repair: {}", clean.total());
}
